"""Deep cross-verification against exact oracles — the audit layer.

``check_invariants()`` methods verify *internal* consistency; this module
verifies structures against *external* ground truth:

* :func:`audit_orientation` — a BALANCED(H) structure against the graph
  it is supposed to orient (edge sets equal, orientation complete,
  H-balanced, levels reconciled);
* :func:`audit_coreness` — estimator output against exact peeling, with
  the Theorem 5.1/1.1 band scaled by configurable slack;
* :func:`audit_density` — the density ladder against the exact flow
  oracle and the flow-optimal orientation;
* :func:`replay_audit` — replays a batch stream, auditing after every
  batch; used by the CLI's ``verify`` subcommand and the soak tests.
  Takes an :class:`~repro.config.ExecConfig` so the PR-4 execution paths
  (process backend, rung-skip deferred queues) are audited too, not just
  the historical serial loop.

Every function returns an :class:`AuditReport`; ``ok`` is False with a
list of findings rather than raising, so operators can log everything.

The differential layer on top of these absolute audits lives in
:mod:`repro.verify.differential` (docs/VERIFICATION.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..errors import InvariantViolation
from ..graphs.streams import BatchOp
from ..instrument import trace as _trace

#: How many example violations each finding embeds before summarising.
SAMPLE_LIMIT = 3


@dataclass
class AuditReport:
    """Accumulated invariant-audit findings; ``ok`` iff none."""

    subject: str
    findings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def add(self, finding: str) -> None:
        self.findings.append(finding)

    def merge(self, other: "AuditReport") -> None:
        self.findings.extend(f"{other.subject}: {f}" for f in other.findings)

    def render(self) -> str:
        status = "OK" if self.ok else f"{len(self.findings)} finding(s)"
        lines = [f"[{status}] {self.subject}"]
        lines.extend(f"  - {f}" for f in self.findings)
        return "\n".join(lines)


def audit_orientation(st, graph) -> AuditReport:
    """BALANCED(H) vs the ground-truth graph."""
    from ..core.levels import is_h_balanced_edge

    report = AuditReport(f"BALANCED({st.H})")
    try:
        st.check_invariants()
    except InvariantViolation as exc:
        report.add(f"internal invariant broken: {exc}")
    ours = {(a, b) for (a, b, _c) in st.tail_of}
    if ours != graph.edges:
        missing = graph.edges - ours
        extra = ours - graph.edges
        if missing:
            report.add(f"{len(missing)} graph edges absent (e.g. {sorted(missing)[:SAMPLE_LIMIT]})")
        if extra:
            report.add(f"{len(extra)} phantom edges (e.g. {sorted(extra)[:SAMPLE_LIMIT]})")
    unbalanced = 0
    sample: list[tuple[int, int, int]] = []
    for tail, head, copy in st.arcs():
        if not is_h_balanced_edge(
            st.level.get(tail, 0), st.level.get(head, 0), st.H
        ):
            unbalanced += 1
            if len(sample) < SAMPLE_LIMIT:
                sample.append((tail, head, copy))
    if unbalanced:
        examples = " ".join(f"({t}->{h},{c})" for t, h, c in sample)
        report.add(f"{unbalanced} unbalanced arc(s) (e.g. {examples})")
    total_level = sum(st.level.values())
    if total_level != st.num_arcs():
        report.add(
            f"levels sum to {total_level}, arcs number {st.num_arcs()}"
        )
    return report


def audit_coreness(
    decomposition,
    graph,
    lower: float = 0.1,
    upper: float = 6.0,
    min_core: int = 2,
) -> AuditReport:
    """Estimates vs exact peeling, within [lower, upper] x core."""
    from ..baselines.exact_kcore import core_numbers

    report = AuditReport("coreness band")
    exact = core_numbers(graph)
    for v in sorted(graph.touched_vertices()):
        c = exact.get(v, 0)
        if c < min_core:
            continue
        est = decomposition.estimate(v)
        if not (lower * c <= est <= upper * c):
            report.add(f"vertex {v}: core={c}, estimate={est:.2f} outside band")
    return report


def audit_density(
    estimator,
    graph,
    lower: float = 0.3,
    upper: float = 3.0,
    orientation_factor: float = 3.0,
) -> AuditReport:
    """Density estimate and orientation vs the exact flow oracles."""
    from ..baselines.exact_density import exact_density
    from ..baselines.exact_orientation import min_max_outdegree

    report = AuditReport("density band")
    rho = exact_density(graph)
    est = estimator.density_estimate()
    if rho > 0.5 and not (lower * rho <= est <= max(2.0, upper * rho)):
        report.add(f"rho={rho:.2f}, estimate={est:.2f} outside band")
    if graph.m:
        dstar, _ = min_max_outdegree(graph)
        maxout = estimator.max_outdegree()
        if maxout > orientation_factor * dstar + 1:
            report.add(
                f"orientation max d+ {maxout} vs flow optimum {dstar}"
            )
    return report


def replay_audit(
    ops: Sequence[BatchOp],
    H: Optional[int] = None,
    eps: float = 0.4,
    constants=None,
    audit_every: int = 1,
    deep_every: int = 0,
    exec_config=None,
) -> AuditReport:
    """Replay a stream, auditing the orientation after every batch.

    ``deep_every > 0`` additionally audits coreness/density bands every
    that many batches (expensive: runs the exact oracles).  The ladder
    structures for those deep audits are built from ``exec_config``
    (executor backend + rung-skip filtering), so every execution path —
    not just the default serial loop — faces the oracles; deferred rungs
    are flushed before each deep audit so the filtered configuration is
    judged on the same concrete state a query would materialise.
    """
    from ..config import DEFAULT_CONSTANTS, DEFAULT_EXEC
    from ..core.balanced import BalancedOrientation
    from ..core.coreness import CorenessDecomposition
    from ..core.density import DensityEstimator
    from ..graphs.graph import DynamicGraph

    constants = constants or DEFAULT_CONSTANTS
    cfg = exec_config if exec_config is not None else DEFAULT_EXEC
    report = AuditReport("stream replay")
    graph = DynamicGraph(0)
    # size the orientation to the stream if no hint given
    n_guess = max((max(e) for op in ops for e in op.edges), default=1) + 1
    st = BalancedOrientation(H or 5, constants=constants)
    core = dens = None
    executor = None
    if deep_every:
        executor = cfg.make_executor()
        core = CorenessDecomposition(
            n_guess, eps, constants=constants,
            executor=executor, rung_skip=cfg.rung_skip,
        )
        dens = DensityEstimator(
            n_guess, eps, constants=constants,
            executor=executor, rung_skip=cfg.rung_skip,
        )
    try:
        for i, op in enumerate(ops):
            if op.kind == "insert":
                graph.insert_batch(op.edges)
                st.insert_batch(op.edges)
                if core is not None:
                    core.insert_batch(op.edges)
                    dens.insert_batch(op.edges)
            else:
                graph.delete_batch(op.edges)
                st.delete_batch(op.edges)
                if core is not None:
                    core.delete_batch(op.edges)
                    dens.delete_batch(op.edges)
            if audit_every and i % audit_every == 0:
                sub = audit_orientation(st, graph)
                if not sub.ok:
                    sub.subject += f" (batch {i})"
                    report.merge(sub)
            if deep_every and i % deep_every == deep_every - 1:
                with _trace.span("verify.audit", detail={"batch": i}):
                    core.flush_all_pending()
                    dens.flush_all_pending()
                    sub = audit_coreness(core, graph)
                    if not sub.ok:
                        sub.subject += f" (batch {i})"
                        report.merge(sub)
                    sub = audit_density(dens, graph)
                    if not sub.ok:
                        sub.subject += f" (batch {i})"
                        report.merge(sub)
    finally:
        if executor is not None:
            executor.close()
    return report
