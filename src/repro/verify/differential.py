"""Differential replay: one stream, N execution configurations, zero drift.

The repo now carries several execution paths that must agree — the serial
executor vs the :class:`~repro.pram.executor.ProcessExecutor`, rung-skip
filtering on vs off, telemetry armed vs disarmed, and a fault-injected
run recovered by the :class:`~repro.resilience.recovery.RecoveryManager`
vs a clean run.  Each contract is asserted somewhere in isolation; this
module asserts them *together*: replay one :class:`BatchOp` stream
through every named :class:`RunnerConfig` and diff the per-batch outputs
(coreness estimates, density/arboricity answers, the exported
orientation, invariant health, and — within a *cost class* — the cost
model's work/depth/counters) against the baseline configuration, plus
optional deep audits of the baseline against the exact oracles in
``baselines/``.

Answers must match across **all** configurations: the executor contract,
the rung-skip certificate, the telemetry never-perturbs guarantee and
the tier-1/2 recovery determinism all promise bit-identical query
results.  Cost totals are only contractual within a cost class
(``cost_class="exact"`` for serial/process/telemetry/flat/shm-2 — the
substrate and resident-state contracts promise bit-identical accounting
too; rung-skip and chaos change cost *by design*, so they opt out with
``cost_class=None``).

On divergence, :func:`minimize_diff` shrinks the stream with the ddmin
minimizer to a minimal repro; :mod:`repro.verify.artifact` serialises it
for ``repro verify --replay``.  See docs/VERIFICATION.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from ..config import DEFAULT_CONSTANTS, Constants, ExecConfig
from ..core.coreness import CorenessDecomposition
from ..core.density import DensityEstimator
from ..errors import ParameterError
from ..graphs.graph import DynamicGraph
from ..graphs.streams import BatchOp
from ..instrument import trace as _trace
from ..instrument.telemetry import Tracer
from ..instrument.work_depth import CostModel
from .audits import audit_coreness, audit_density
from .minimize import minimize_stream

#: Divergence values are reprs truncated to this length in reports.
_VALUE_WIDTH = 96


@dataclass(frozen=True)
class RunnerConfig:
    """One named execution configuration of the differential harness.

    ``faults`` is a tuple of ``(site, hit, action)`` triples planned on a
    fresh seeded :class:`~repro.resilience.faults.FaultInjector` per run;
    with ``recovery=True`` batches apply through a ``RecoveryManager``
    (the fault is expected to be absorbed), without it a raising fault
    kills the configuration — which is exactly what the harness is for.
    """

    name: str
    workers: int = 1
    rung_skip: bool = False
    telemetry: bool = False
    recovery: bool = False
    faults: tuple[tuple[str, int, str], ...] = ()
    cost_class: Optional[str] = "exact"
    substrate: str = "treap"
    shared_state: bool = False

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "workers": self.workers,
            "rung_skip": self.rung_skip,
            "telemetry": self.telemetry,
            "recovery": self.recovery,
            "faults": [list(f) for f in self.faults],
            "cost_class": self.cost_class,
            "substrate": self.substrate,
            "shared_state": self.shared_state,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "RunnerConfig":
        return cls(
            name=str(d["name"]),
            workers=int(d.get("workers", 1)),
            rung_skip=bool(d.get("rung_skip", False)),
            telemetry=bool(d.get("telemetry", False)),
            recovery=bool(d.get("recovery", False)),
            faults=tuple(
                (str(s), int(h), str(a)) for s, h, a in d.get("faults", [])
            ),
            cost_class=d.get("cost_class"),
            substrate=str(d.get("substrate", "treap")),
            shared_state=bool(d.get("shared_state", False)),
        )


def default_configs() -> list[RunnerConfig]:
    """The standard panel; index 0 is the baseline every run diffs against.

    The chaos-recovered member plans one transient "raise" fault: the
    recovery manager's tier-1 rollback-and-retry is deterministic, so its
    answers must still match the clean baseline bit for bit.
    """
    return [
        RunnerConfig("serial"),
        RunnerConfig("process-2", workers=2),
        RunnerConfig("telemetry", telemetry=True),
        RunnerConfig("flat", substrate="flat"),
        RunnerConfig("shm-2", workers=2, shared_state=True),
        RunnerConfig("rung-skip", rung_skip=True, cost_class=None),
        RunnerConfig(
            "chaos-recovered",
            recovery=True,
            faults=(("tokens.drop.phase", 3, "raise"),),
            cost_class=None,
        ),
    ]


def configs_by_name(names: Sequence[str]) -> list[RunnerConfig]:
    """Select panel members by name (order preserved, baseline first)."""
    registry = {c.name: c for c in default_configs()}
    unknown = [n for n in names if n not in registry]
    if unknown:
        raise ParameterError(
            f"unknown differential config(s) {unknown}; "
            f"known: {sorted(registry)}"
        )
    return [registry[n] for n in names]


@dataclass
class Divergence:
    """One observed disagreement between a configuration and the baseline."""

    batch: int
    config: str
    observable: str
    baseline: str
    observed: str

    def render(self) -> str:
        return (
            f"batch {self.batch} [{self.config}] {self.observable}: "
            f"baseline={self.baseline} observed={self.observed}"
        )


@dataclass
class DiffReport:
    """Outcome of one differential replay."""

    configs: list[str]
    batches: int = 0
    divergences: list[Divergence] = field(default_factory=list)
    oracle_findings: list[str] = field(default_factory=list)
    cost_totals: dict[str, tuple[int, int]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.divergences and not self.oracle_findings

    @property
    def implicated(self) -> set[str]:
        """Names of the non-baseline configs that diverged."""
        return {d.config for d in self.divergences}

    def render(self) -> str:
        verdict = "GREEN" if self.ok else "RED"
        lines = [
            f"differential replay [{verdict}]: {self.batches} batches "
            f"across {len(self.configs)} configs ({', '.join(self.configs)})"
        ]
        for name, (work, depth) in self.cost_totals.items():
            lines.append(f"  cost[{name}]: work={work} depth={depth}")
        if self.divergences:
            lines.append(f"divergences ({len(self.divergences)}):")
            lines.extend(f"  - {d.render()}" for d in self.divergences)
        if self.oracle_findings:
            lines.append(f"exact-oracle findings ({len(self.oracle_findings)}):")
            lines.extend(f"  - {f}" for f in self.oracle_findings)
        return "\n".join(lines)


def _clip(value: Any) -> str:
    text = repr(value)
    if len(text) > _VALUE_WIDTH:
        text = text[: _VALUE_WIDTH - 3] + "..."
    return text


class _ConfigRun:
    """Live state of one configuration during a differential replay."""

    def __init__(
        self,
        cfg: RunnerConfig,
        n: int,
        eps: float,
        constants: Constants,
        seed: int,
    ) -> None:
        self.cfg = cfg
        self.cm = CostModel()
        self.error: Optional[str] = None
        self.dead_reported = False
        self.diverged = False
        self.executor = ExecConfig(
            cfg.workers,
            cfg.rung_skip,
            substrate=cfg.substrate,
            shared_state=cfg.shared_state,
        ).make_executor()
        self.core = CorenessDecomposition(
            n, eps, cm=self.cm, constants=constants, seed=seed,
            executor=self.executor, rung_skip=cfg.rung_skip,
            substrate=cfg.substrate,
        )
        self.dens = DensityEstimator(
            n, eps, cm=self.cm, constants=constants, seed=seed,
            executor=self.executor, rung_skip=cfg.rung_skip,
            substrate=cfg.substrate,
        )
        self.injector = None
        if cfg.faults:
            from ..resilience.faults import FaultInjector, FaultSpec

            self.injector = FaultInjector(
                [FaultSpec(site=s, hit=h, action=a) for s, h, a in cfg.faults],
                seed=seed,
            )
        self.managers = None
        if cfg.recovery:
            from ..resilience.recovery import RecoveryManager

            self.managers = [
                RecoveryManager(self.core, checkpoint_every=4),
                RecoveryManager(self.dens, checkpoint_every=4),
            ]

    def apply(self, op: BatchOp) -> None:
        """Apply one batch under this config's injection/telemetry regime."""
        if self.injector is not None:
            from ..resilience.faults import injecting

            with injecting(self.injector):
                self._apply_traced(op)
        else:
            self._apply_traced(op)

    def _apply_traced(self, op: BatchOp) -> None:
        if self.cfg.telemetry:
            # a fresh tracer per batch: arm/disarm boundaries must sit
            # between batches, and spans must never perturb the answers
            # or the cost model (that is the contract being diffed).
            with _trace.tracing(Tracer(self.cm, sinks=())):
                self._apply_raw(op)
        else:
            self._apply_raw(op)

    def _apply_raw(self, op: BatchOp) -> None:
        if self.managers is not None:
            for manager in self.managers:
                manager.apply(op)
        elif op.kind == "insert":
            self.core.insert_batch(op.edges)
            self.dens.insert_batch(op.edges)
        else:
            self.core.delete_batch(op.edges)
            self.dens.delete_batch(op.edges)

    def observe(self, live_edges: Sequence[tuple[int, int]]) -> dict[str, Any]:
        """Snapshot every diffable answer this configuration exports."""
        health: Any = True
        try:
            self.core.check_invariants()
            self.dens.check_invariants()
        except Exception as exc:
            health = f"{type(exc).__name__}: {exc}"
        return {
            "estimates": tuple(sorted(self.core.estimates().items())),
            "max_estimate": self.core.max_estimate(),
            "density": self.dens.density_estimate(),
            "arboricity": self.dens.arboricity_estimate(),
            "max_outdegree": self.dens.max_outdegree(),
            "orientation": tuple(
                self.dens.orientation_of(u, v) for u, v in live_edges
            ),
            "invariants": health,
        }

    def cost_view(self) -> tuple[int, int, dict]:
        return (self.cm.work, self.cm.depth, dict(self.cm.counters))

    def close(self) -> None:
        self.executor.close()


def run_diff(
    ops: Sequence[BatchOp],
    *,
    configs: Optional[Sequence[RunnerConfig]] = None,
    eps: float = 0.35,
    constants: Constants = DEFAULT_CONSTANTS,
    seed: int = 0,
    n: Optional[int] = None,
    deep_every: int = 0,
    stop_on_divergence: bool = False,
) -> DiffReport:
    """Replay ``ops`` through every config; diff per-batch outputs.

    The first config is the baseline.  Answer observables are compared
    for every config, cost views only between configs sharing the
    baseline's non-``None`` ``cost_class``.  ``deep_every > 0`` audits
    the baseline against the exact oracles every that many batches.
    ``stop_on_divergence`` returns at the first red batch (the ddmin
    predicate path — no point finishing a stream already known to fail).
    ``n`` pins the vertex-universe size; pass it explicitly whenever the
    stream is a shrunk candidate, because the ladder heights derive from
    it and a drifting ``n`` would change the structures under test.
    """
    panel = list(configs) if configs is not None else default_configs()
    if not panel:
        raise ParameterError("differential replay needs at least one config")
    if n is None:
        n = max((max(e) for op in ops for e in op.edges), default=1) + 1
    report = DiffReport([c.name for c in panel])
    runs = [_ConfigRun(cfg, n, eps, constants, seed) for cfg in panel]
    base = runs[0]
    graph = DynamicGraph(0)
    try:
        with _trace.span("verify.diff", detail={"batches": len(ops)}):
            for i, op in enumerate(ops):
                if op.kind == "insert":
                    graph.insert_batch(op.edges)
                else:
                    graph.delete_batch(op.edges)
                for run in runs:
                    if run.error is not None:
                        continue
                    try:
                        with _trace.span("verify.config", config=run.cfg.name):
                            run.apply(op)
                    except Exception as exc:
                        run.error = f"{type(exc).__name__}: {exc}"
                report.batches = i + 1
                _compare_batch(report, runs, graph, i)
                if deep_every and i % deep_every == deep_every - 1:
                    _deep_audit(report, base, graph, i)
                if stop_on_divergence and not report.ok:
                    break
    finally:
        for run in runs:
            report.cost_totals[run.cfg.name] = (run.cm.work, run.cm.depth)
            run.close()
    return report


def _compare_batch(
    report: DiffReport, runs: list[_ConfigRun], graph: DynamicGraph, i: int
) -> None:
    base = runs[0]
    if base.error is not None:
        if not base.dead_reported:
            base.dead_reported = True
            report.divergences.append(
                Divergence(i, base.cfg.name, "exception", "completes", base.error)
            )
        return
    live = sorted(graph.edges)
    base_obs = base.observe(live)
    base_cost = base.cost_view()
    for run in runs[1:]:
        if run.error is not None:
            if not run.dead_reported:
                run.dead_reported = True
                report.divergences.append(
                    Divergence(i, run.cfg.name, "exception", "completes", run.error)
                )
            continue
        if run.diverged:
            continue  # already red; one report per config keeps the noise down
        obs = run.observe(live)
        for key, expected in base_obs.items():
            if obs[key] != expected:
                run.diverged = True
                report.divergences.append(
                    Divergence(i, run.cfg.name, key, _clip(expected), _clip(obs[key]))
                )
        if (
            not run.diverged
            and run.cfg.cost_class is not None
            and run.cfg.cost_class == base.cfg.cost_class
            and run.cost_view() != base_cost
        ):
            run.diverged = True
            report.divergences.append(
                Divergence(
                    i,
                    run.cfg.name,
                    f"cost[{run.cfg.cost_class}]",
                    _clip(base_cost[:2]),
                    _clip(run.cost_view()[:2]),
                )
            )


def _deep_audit(
    report: DiffReport, base: _ConfigRun, graph: DynamicGraph, i: int
) -> None:
    if base.error is not None:
        return
    with _trace.span("verify.audit", detail={"batch": i}):
        base.core.flush_all_pending()
        base.dens.flush_all_pending()
        for sub in (
            audit_coreness(base.core, graph),
            audit_density(base.dens, graph),
        ):
            if not sub.ok:
                report.oracle_findings.extend(
                    f"batch {i}: {sub.subject}: {f}" for f in sub.findings
                )


def diff_predicate(
    configs: Sequence[RunnerConfig],
    *,
    eps: float = 0.35,
    constants: Constants = DEFAULT_CONSTANTS,
    seed: int = 0,
    n: Optional[int] = None,
    deep_every: int = 0,
):
    """A ddmin predicate: True iff the candidate stream still diverges."""

    def predicate(candidate: list[BatchOp]) -> bool:
        rep = run_diff(
            candidate,
            configs=configs,
            eps=eps,
            constants=constants,
            seed=seed,
            n=n,
            deep_every=deep_every,
            stop_on_divergence=True,
        )
        return not rep.ok

    return predicate


def minimize_diff(
    ops: Sequence[BatchOp],
    report: DiffReport,
    *,
    configs: Optional[Sequence[RunnerConfig]] = None,
    eps: float = 0.35,
    constants: Constants = DEFAULT_CONSTANTS,
    seed: int = 0,
    n: Optional[int] = None,
    deep_every: int = 0,
) -> tuple[list[BatchOp], list[RunnerConfig]]:
    """Shrink a red differential run to a minimal repro.

    The probe panel is narrowed to the baseline plus the implicated
    configs (no point spinning up a process pool per ddmin probe for a
    config that never diverged); oracle audits are kept only when the
    oracle actually flagged something.  Returns the minimal stream and
    the panel it fails under — ready for an artifact.
    """
    panel = list(configs) if configs is not None else default_configs()
    implicated = report.implicated
    probe = [panel[0]] + [c for c in panel[1:] if c.name in implicated]
    probe_deep = deep_every if report.oracle_findings else 0
    if n is None:
        n = max((max(e) for op in ops for e in op.edges), default=1) + 1
    minimal = minimize_stream(
        ops,
        diff_predicate(
            probe, eps=eps, constants=constants, seed=seed, n=n,
            deep_every=probe_deep,
        ),
    )
    return minimal, probe
