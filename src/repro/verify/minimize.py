"""Deterministic ddmin trace shrinking — minimal repros from failing streams.

A differential or chaos failure on a 200-batch stream is unreadable; the
same failure on two batches is a bug report.  :func:`minimize_stream`
takes a failing stream plus a *predicate* (``True`` iff the candidate
stream still fails) and shrinks it with Zeller's delta-debugging
algorithm at two granularities:

1. **batch ddmin** — drop whole :class:`~repro.graphs.streams.BatchOp`
   entries, coarse to fine;
2. **edge ddmin** — within each surviving batch, drop individual edges.

Dropping operations can invalidate a stream (a delete of an edge whose
insert was dropped, an insert of an edge that is now still live), so
every candidate passes through :func:`repair_stream` before the
predicate sees it: dead deletes and duplicate inserts are removed and
empty batches dropped.  Repair is order-preserving and idempotent, and
repaired candidates are cached so the predicate never runs twice on the
same stream.

Everything here is deterministic — same input stream and predicate,
same minimal repro — which is what makes the CI artifact upload and
``repro verify --replay`` round-trip meaningful.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..graphs.streams import BatchOp
from ..instrument import trace as _trace

Predicate = Callable[[list[BatchOp]], bool]


def repair_stream(ops: Sequence[BatchOp]) -> list[BatchOp]:
    """Make a candidate stream valid: inserts absent, deletes present.

    Walks the stream with a running live-edge set, dropping insert edges
    that are already live and delete edges that are not; batches left
    empty vanish.  Valid streams come back unchanged (same BatchOp
    objects), so ``repair_stream(repair_stream(x)) == repair_stream(x)``.
    """
    live: set = set()
    out: list[BatchOp] = []
    for op in ops:
        if op.kind == "insert":
            kept = tuple(e for e in op.edges if e not in live)
            live.update(kept)
        else:
            kept = tuple(e for e in op.edges if e in live)
            live.difference_update(kept)
        if kept:
            out.append(op if kept == op.edges else BatchOp(op.kind, kept))
    return out


def _stream_key(ops: Sequence[BatchOp]) -> tuple:
    return tuple((op.kind, op.edges) for op in ops)


class _CachedPredicate:
    """Repairs candidates and memoises predicate calls by stream value."""

    def __init__(self, predicate: Predicate):
        self._predicate = predicate
        self._seen: dict[tuple, bool] = {}
        self.calls = 0

    def __call__(self, ops: Sequence[BatchOp]) -> bool:
        repaired = repair_stream(ops)
        key = _stream_key(repaired)
        if key not in self._seen:
            self.calls += 1
            self._seen[key] = bool(self._predicate(repaired))
        return self._seen[key]


def _ddmin(items: list, fails: Callable[[list], bool]) -> list:
    """Zeller's ddmin: a minimal failing sublist of ``items``.

    ``fails`` must already hold on ``items``; the result is 1-minimal in
    the classic sense (no single chunk at the finest granularity can be
    removed without the failure disappearing).
    """
    n = 2
    while len(items) >= 2:
        chunk = max(1, len(items) // n)
        starts = range(0, len(items), chunk)
        reduced = False
        # try each subset (one chunk alone), then each complement
        for s in starts:
            subset = items[s : s + chunk]
            if len(subset) < len(items) and fails(subset):
                items = subset
                n = 2
                reduced = True
                break
        if reduced:
            continue
        for s in starts:
            complement = items[:s] + items[s + chunk :]
            if complement and len(complement) < len(items) and fails(complement):
                items = complement
                n = max(n - 1, 2)
                reduced = True
                break
        if reduced:
            continue
        if n >= len(items):
            break
        n = min(len(items), n * 2)
    return items


def minimize_stream(
    ops: Sequence[BatchOp],
    predicate: Predicate,
    *,
    shrink_edges: bool = True,
) -> list[BatchOp]:
    """Shrink a failing stream to a (repaired) minimal repro.

    ``predicate(candidate)`` must return True iff the candidate still
    exhibits the failure; it is only ever called on valid (repaired)
    streams.  Raises ``ValueError`` if the input stream itself does not
    fail — a minimizer that "succeeds" on a passing stream would mint
    empty repro artifacts.
    """
    check = _CachedPredicate(predicate)
    seed = repair_stream(ops)
    if not check(seed):
        raise ValueError("input stream does not fail the predicate; nothing to minimize")
    with _trace.span("verify.minimize", detail={"batches": len(seed)}):
        batches = _ddmin(list(seed), check)
        batches = repair_stream(batches)
        if shrink_edges:
            batches = _shrink_edges(batches, check)
    assert check(batches), "minimized stream stopped failing"  # ddmin invariant
    return repair_stream(batches)


def _shrink_edges(batches: list[BatchOp], check: _CachedPredicate) -> list[BatchOp]:
    """Edge-level ddmin inside each batch, front to back."""
    i = 0
    while i < len(batches):
        op = batches[i]
        if op.size > 1:
            def fails_with(edges: list, _i=i, _op=op) -> bool:
                if not edges:
                    return False
                candidate = list(batches)
                candidate[_i] = BatchOp(_op.kind, tuple(edges))
                return check(candidate)

            kept = _ddmin(list(op.edges), fails_with)
            batches[i] = BatchOp(op.kind, tuple(kept))
            # a slimmer insert can strand later deletes; re-repair and
            # restart edge-shrinking at the same logical position
            repaired = repair_stream(batches)
            if _stream_key(repaired) != _stream_key(batches):
                batches = repaired
                continue
        i += 1
    return batches
