"""CFG builder edge cases: try/finally routing, early return, loop-else."""

from __future__ import annotations

import ast
import textwrap

from repro.analysis.cfg import build_cfg


def _cfg(source: str):
    tree = ast.parse(textwrap.dedent(source))
    return build_cfg(tree.body[0])


def _block_at(cfg, line: int) -> int:
    """Index of the (unique) block containing a statement on ``line``."""
    hits = [b.index for b in cfg.blocks if line in b.lines()]
    assert hits, f"no block contains line {line}"
    return hits[0]


class TestEarlyReturn:
    """Early returns create genuinely separate entry->exit paths."""

    SRC = """
    def f(self, x):
        if x:
            return 1
        self.mutate()
        return 2
    """

    def test_both_returns_reach_exit(self):
        cfg = _cfg(self.SRC)
        reach = cfg.reachable(cfg.entry)
        assert cfg.exit in reach
        assert _block_at(cfg, 4) in reach  # return 1
        assert _block_at(cfg, 5) in reach  # self.mutate()

    def test_early_path_avoids_late_body(self):
        cfg = _cfg(self.SRC)
        late = _block_at(cfg, 5)
        assert cfg.exit in cfg.reachable(cfg.entry, blocked={late})

    def test_late_path_avoids_early_return(self):
        cfg = _cfg(self.SRC)
        early = _block_at(cfg, 4)
        assert cfg.exit in cfg.reachable(cfg.entry, blocked={early})


class TestTryFinally:
    """finally suites sit on every leaving path, normal or unwinding."""

    def test_return_routes_through_finally(self):
        cfg = _cfg(
            """
            def f():
                try:
                    return 1
                finally:
                    cleanup()
            """
        )
        fin = _block_at(cfg, 6)
        assert cfg.exit in cfg.reachable(cfg.entry)
        assert cfg.exit not in cfg.reachable(cfg.entry, blocked={fin})

    def test_unhandled_exception_unwinds_through_finally(self):
        cfg = _cfg(
            """
            def f():
                try:
                    danger()
                finally:
                    cleanup()
                return 1
            """
        )
        fin = _block_at(cfg, 6)
        assert cfg.raise_exit in cfg.reachable(cfg.entry)
        assert cfg.raise_exit not in cfg.reachable(cfg.entry, blocked={fin})
        # the normal path also runs the finally
        assert cfg.exit not in cfg.reachable(cfg.entry, blocked={fin})

    def test_handler_catches_raise(self):
        cfg = _cfg(
            """
            def f():
                try:
                    raise ValueError("boom")
                except ValueError:
                    recover()
                return 0
            """
        )
        handler = _block_at(cfg, 6)
        assert handler in cfg.reachable(cfg.entry)
        assert cfg.exit in cfg.reachable(cfg.entry)

    def test_break_runs_inner_finally_only(self):
        cfg = _cfg(
            """
            def f(xs):
                for x in xs:
                    try:
                        if x:
                            break
                    finally:
                        inner()
                return done()
            """
        )
        fin = _block_at(cfg, 8)
        # the break path must pass through the inner finally
        assert cfg.exit in cfg.reachable(cfg.entry)
        ret = _block_at(cfg, 9)
        # reaching the return while blocking the finally is only possible
        # via the loop-exhaustion edge, never via break
        assert ret in cfg.reachable(cfg.entry, blocked={fin})


class TestLoopElse:
    SRC = """
    def f(xs):
        for x in xs:
            if x:
                break
        else:
            tail()
        return 0
    """

    def test_else_runs_on_exhaustion(self):
        cfg = _cfg(self.SRC)
        assert _block_at(cfg, 7) in cfg.reachable(cfg.entry)

    def test_break_bypasses_else(self):
        cfg = _cfg(self.SRC)
        tail = _block_at(cfg, 7)
        assert cfg.exit in cfg.reachable(cfg.entry, blocked={tail})

    def test_while_true_overapproximates_exit(self):
        cfg = _cfg(
            """
            def f():
                while True:
                    spin()
            """
        )
        # deliberate over-approximation: the head always has an exit edge
        assert cfg.exit in cfg.reachable(cfg.entry)


class TestUnreachableAndWith:
    def test_code_after_return_still_lowered(self):
        cfg = _cfg(
            """
            def f(self):
                return 1
                self.mutate()
            """
        )
        dead = _block_at(cfg, 4)
        assert dead not in cfg.reachable(cfg.entry)

    def test_with_context_expr_kept_in_block(self):
        cfg = _cfg(
            """
            def f(self, batch):
                with self.cm.parallel() as region:
                    work(batch)
                return 1
            """
        )
        assert _block_at(cfg, 3) in cfg.reachable(cfg.entry)
        assert cfg.exit in cfg.reachable(cfg.entry)
