"""REP-C001/C002/C003: cost-accounting rules, firing and silent fixtures."""

from __future__ import annotations

import textwrap

from repro.analysis import lint_source


def rules_of(source: str, *, cost_scope: bool = True) -> set[str]:
    return {
        f.rule for f in lint_source(textwrap.dedent(source), cost_scope=cost_scope)
    }


# ---------------------------------------------------------------- REP-C001


VIOLATING_C001 = """
    class Table:
        def __init__(self, cm):
            self.cm = cm
            self.data = {}

        def put(self, key, value):
            '''Store one entry.'''
            self.data[key] = value
"""


def test_c001_fires_on_uncharged_public_mutator():
    assert "REP-C001" in rules_of(VIOLATING_C001)


def test_c001_silent_when_charge_is_direct():
    clean = """
        class Table:
            def __init__(self, cm):
                self.cm = cm
                self.data = {}

            def put(self, key, value):
                '''Store one entry.'''
                self.cm.charge(work=1, depth=1)
                self.data[key] = value
    """
    assert "REP-C001" not in rules_of(clean)


def test_c001_silent_when_charge_is_delegated():
    clean = """
        class Table:
            def __init__(self, cm):
                self.cm = cm
                self.data = {}

            def put(self, key, value):
                '''Store one entry.'''
                self._put(key, value)

            def _put(self, key, value):
                self.cm.tick(1)
                self.data[key] = value
    """
    assert "REP-C001" not in rules_of(clean)


def test_c001_silent_outside_cost_scope():
    assert "REP-C001" not in rules_of(VIOLATING_C001, cost_scope=False)


def test_c001_silent_for_classes_without_cost_model():
    clean = """
        class PlainSet:
            '''Charged by the enclosing structure.'''

            def __init__(self):
                self.items = set()

            def add(self, item):
                '''Insert one item.'''
                self.items.add(item)
    """
    assert "REP-C001" not in rules_of(clean)


def test_c001_suppression_on_def_line():
    suppressed = """
        class Table:
            def __init__(self, cm):
                self.cm = cm
                self.data = {}

            def put(self, key, value):  # reprolint: disable=REP-C001
                '''Store one entry.'''
                self.data[key] = value
    """
    assert "REP-C001" not in rules_of(suppressed)


# ---------------------------------------------------------------- REP-C002


def test_c002_fires_on_dead_cm_param():
    violating = """
        def rebuild(items, cm):
            '''Rebuild from scratch.'''
            return sorted(items)
    """
    assert "REP-C002" in rules_of(violating)


def test_c002_silent_when_cm_forwarded():
    clean = """
        def rebuild(items, cm):
            '''Rebuild from scratch.'''
            return helper(items, cm=cm)
    """
    assert "REP-C002" not in rules_of(clean)


# ---------------------------------------------------------------- REP-C003


def test_c003_fires_on_uncharged_mutating_loop():
    violating = """
        class Mirror:
            def __init__(self, cm):
                self.cm = cm
                self.out = {}

            def sync(self, changed):
                '''Reconcile the mirror.'''
                for edge in changed:
                    while edge in self.out:
                        self.out.pop(edge)
    """
    report = rules_of(violating)
    assert "REP-C003" in report


def test_c003_silent_with_batch_granularity_charge():
    clean = """
        class Mirror:
            def __init__(self, cm):
                self.cm = cm
                self.out = {}

            def sync(self, changed):
                '''Reconcile the mirror.'''
                self.cm.charge(work=len(changed), depth=1)
                for edge in changed:
                    self.out[edge] = True
    """
    assert "REP-C003" not in rules_of(clean)


def test_c003_silent_with_charge_inside_loop():
    clean = """
        class Mirror:
            def __init__(self, cm):
                self.cm = cm
                self.out = {}

            def sync(self, changed):
                '''Reconcile the mirror.'''
                for edge in changed:
                    self.cm.tick(1)
                    self.out[edge] = True
    """
    assert "REP-C003" not in rules_of(clean)
