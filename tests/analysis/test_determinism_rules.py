"""REP-D001/D002/D003: determinism rules, firing and silent fixtures."""

from __future__ import annotations

import textwrap

from repro.analysis import lint_source


def rules_of(source: str) -> set[str]:
    return {f.rule for f in lint_source(textwrap.dedent(source))}


# ---------------------------------------------------------------- REP-D001


def test_d001_fires_on_global_random_call():
    violating = """
        import random

        def pick(items):
            '''Pick one.'''
            return random.choice(items)
    """
    assert "REP-D001" in rules_of(violating)


def test_d001_fires_on_numpy_global_generator():
    violating = """
        import numpy as np

        def noise(n):
            '''Random vector.'''
            return np.random.rand(n)
    """
    assert "REP-D001" in rules_of(violating)


def test_d001_silent_on_seeded_instance():
    clean = """
        import random

        def pick(items, seed=0):
            '''Pick one, reproducibly.'''
            rng = random.Random(seed)
            return rng.choice(items)
    """
    assert rules_of(clean) == set()


def test_d001_inline_suppression():
    suppressed = """
        import random

        def pick(items):
            '''Pick one.'''
            return random.choice(items)  # reprolint: disable=REP-D001
    """
    assert "REP-D001" not in rules_of(suppressed)


# ---------------------------------------------------------------- REP-D002


def test_d002_fires_on_unseeded_random():
    violating = """
        import random

        def fresh():
            '''New generator.'''
            return random.Random()
    """
    assert "REP-D002" in rules_of(violating)


def test_d002_silent_on_seeded_random():
    clean = """
        import random

        def fresh(seed):
            '''New generator.'''
            return random.Random(seed)
    """
    assert "REP-D002" not in rules_of(clean)


# ---------------------------------------------------------------- REP-D003


def test_d003_fires_on_set_iteration_into_branches():
    violating = """
        def relabel(cm, dirty, labels):
            '''One phase.'''
            touched = {v for v in dirty}
            with cm.parallel() as region:
                for v in touched:
                    with region.branch():
                        cm.tick(1)
    """
    assert "REP-D003" in rules_of(violating)


def test_d003_silent_when_sorted():
    clean = """
        def relabel(cm, dirty, labels):
            '''One phase.'''
            touched = {v for v in dirty}
            with cm.parallel() as region:
                for v in sorted(touched):
                    with region.branch():
                        cm.tick(1)
    """
    assert "REP-D003" not in rules_of(clean)


def test_d003_fires_on_set_passed_to_parallel_map():
    violating = """
        def apply_all(fn, items):
            '''Map in parallel.'''
            return parallel_map({x for x in items}, fn)
    """
    assert "REP-D003" in rules_of(violating)
