"""Engine behaviour: discovery, scoping, suppression spans, reports, e2e."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap

from repro.analysis import Baseline, Finding, LintReport, lint_paths, lint_source
from repro.analysis.engine import in_cost_scope, iter_python_files

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
SRC = os.path.join(REPO_ROOT, "src")


def test_cost_scope_path_classification():
    assert in_cost_scope("src/repro/core/balanced.py")
    assert in_cost_scope("src/repro/pbst/batch_set.py")
    assert in_cost_scope("src/repro/hashtable/batch_table.py")
    assert not in_cost_scope("src/repro/apps/matching.py")
    assert not in_cost_scope("src/repro/graphs/streams.py")


def test_iter_python_files_skips_caches(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "mod.py").write_text("x = 1\n")
    (tmp_path / "pkg" / "__pycache__").mkdir()
    (tmp_path / "pkg" / "__pycache__" / "mod.cpython-311.pyc").write_text("")
    (tmp_path / "pkg.egg-info").mkdir()
    (tmp_path / "pkg.egg-info" / "SOURCES.py").write_text("x = 1\n")
    found = [os.path.basename(p) for p in iter_python_files([str(tmp_path)])]
    assert found == ["mod.py"]


def test_syntax_error_becomes_finding(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def broken(:\n")
    report = lint_paths([str(bad)])
    assert not report.ok
    assert report.findings[0].rule == "REP-E999"


def test_select_filters_rules():
    source = textwrap.dedent(
        """
        '''Module.'''
        import random


        def pick(items):
            return random.choice(items)
        """
    )
    only_d = lint_source(source, select=["REP-D001"])
    assert {f.rule for f in only_d} == {"REP-D001"}


def test_finding_render_and_report_json():
    report = LintReport(subject="unit")
    report.add(Finding("a.py", 3, "REP-X000", "boom"))
    report.files_checked = 1
    assert "a.py:3: REP-X000 boom" in report.render()
    payload = json.loads(report.render_json())
    assert payload["ok"] is False
    assert payload["findings"][0]["line"] == 3


def test_def_line_suppression_covers_body():
    source = textwrap.dedent(
        """
        '''Module.'''


        def noisy(cm, vertices):  # reprolint: disable=REP-R001
            '''Racy by design (test fixture).'''
            flag = False
            with cm.parallel() as region:
                for v in sorted(vertices):
                    with region.branch():
                        flag = True
            return flag
        """
    )
    assert lint_source(source) == []


# ------------------------------------------------------------------- e2e


def test_repo_tree_is_lint_clean():
    baseline = Baseline.load(os.path.join(REPO_ROOT, ".reprolint-baseline.json"))
    report = lint_paths([SRC], baseline=baseline)
    assert report.ok, report.render()
    # the committed baseline must not rot: entries match line-free, so one
    # entry may absorb several findings, but none may absorb zero
    assert report.baselined >= len(baseline.entries), (
        "stale baseline entries — regenerate with --update-baseline"
    )


def test_cli_exits_zero_on_clean_tree():
    env = dict(os.environ, PYTHONPATH=SRC)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", SRC],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "[OK]" in proc.stdout


def test_cli_exits_nonzero_on_findings(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\n\n\ndef pick(xs):\n    '''Pick.'''\n    return random.choice(xs)\n")
    env = dict(os.environ, PYTHONPATH=SRC)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(bad), "--format", "json"],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["findings"][0]["rule"] == "REP-D001"


def test_repro_lint_subcommand():
    from repro.cli import main

    assert main(["lint", SRC]) == 0
