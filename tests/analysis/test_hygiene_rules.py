"""REP-H001/H002/H003: API-hygiene rules, firing and silent fixtures."""

from __future__ import annotations

import textwrap

from repro.analysis import lint_source


def rules_of(source: str) -> set[str]:
    return {f.rule for f in lint_source(textwrap.dedent(source))}


def test_h001_fires_on_phantom_export():
    violating = """
        '''Module.'''

        __all__ = ["exists", "phantom"]


        def exists():
            '''Real.'''
    """
    assert "REP-H001" in rules_of(violating)


def test_h002_fires_on_unexported_public_def():
    violating = """
        '''Module.'''

        __all__ = ["listed"]


        def listed():
            '''Exported.'''


        def unlisted():
            '''Public but missing from __all__.'''
    """
    assert "REP-H002" in rules_of(violating)


def test_h002_silent_for_private_defs():
    clean = """
        '''Module.'''

        __all__ = ["listed"]


        def listed():
            '''Exported.'''


        def _helper():
            pass
    """
    assert rules_of(clean) == set()


def test_h003_fires_on_missing_docstring():
    violating = """
        '''Module.'''


        def exported():
            return 1
    """
    assert "REP-H003" in rules_of(violating)


def test_h003_silent_with_docstring():
    clean = """
        '''Module.'''


        def exported():
            '''Documented.'''
            return 1
    """
    assert rules_of(clean) == set()


def test_module_wide_suppression_comment():
    suppressed = """
        '''Module.'''


        def exported():  # reprolint: disable
            return 1
    """
    assert rules_of(suppressed) == set()
