"""Seeded-violation fixtures for each interprocedural rule family.

Each family gets a positive fixture (the violation is caught) and a
negative twin (the compliant version stays clean), exercised through
``lint_source`` so suppression and select plumbing are covered too.
"""

from __future__ import annotations

import textwrap

from repro.analysis import lint_source


def _rules(source: str, select=None, **kwargs) -> set[str]:
    findings = lint_source(
        textwrap.dedent(source), select=select, **kwargs
    )
    return {f.rule for f in findings}


class TestChargePath:
    """REP-CF001: a mutating entry->return path with no charge."""

    def test_uncharged_early_out_is_caught(self):
        assert "REP-CF001" in _rules(
            """
            '''Fixture.'''


            class Structure:
                '''Doc.'''

                def __init__(self, cm):
                    self.cm = cm
                    self.data = {}

                def insert_batch(self, items):
                    '''Doc.'''
                    if not items:
                        self.data["last"] = 0
                        return
                    self.cm.charge(work=len(items), depth=1)
                    self.data["last"] = len(items)
            """,
            select=["REP-CF"],
        )

    def test_charged_on_all_paths_is_clean(self):
        assert "REP-CF001" not in _rules(
            """
            '''Fixture.'''


            class Structure:
                '''Doc.'''

                def __init__(self, cm):
                    self.cm = cm
                    self.data = {}

                def insert_batch(self, items):
                    '''Doc.'''
                    self.cm.charge(work=len(items) + 1, depth=1)
                    if not items:
                        self.data["last"] = 0
                        return
                    self.data["last"] = len(items)
            """,
            select=["REP-CF"],
        )

    def test_cm_none_guard_idiom_is_clean(self):
        assert "REP-CF001" not in _rules(
            """
            '''Fixture.'''


            class Structure:
                '''Doc.'''

                def __init__(self, cm=None):
                    self.cm = cm
                    self.data = {}

                def set(self, key, value):
                    '''Doc.'''
                    if self.cm is not None:
                        self.cm.charge(work=1, depth=1)
                    self.data[key] = value
            """,
            select=["REP-CF"],
        )

    def test_raise_paths_are_exempt(self):
        assert "REP-CF001" not in _rules(
            """
            '''Fixture.'''


            class Structure:
                '''Doc.'''

                def __init__(self, cm):
                    self.cm = cm
                    self.data = {}

                def insert_batch(self, items):
                    '''Doc.'''
                    self.data["journal"] = list(items)
                    if not items:
                        raise ValueError("empty batch")
                    self.cm.charge(work=len(items), depth=1)
            """,
            select=["REP-CF"],
        )


class TestExceptionSafety:
    """REP-X001/X002: guarded() regions and snapshot capability."""

    def test_uncapturable_target_is_caught(self):
        assert "REP-X002" in _rules(
            """
            '''Fixture.'''


            class Plain:
                '''No capture fingerprint.'''

                def __init__(self):
                    self.stuff = []


            def apply(batch):
                '''Doc.'''
                st = Plain()
                with guarded(st):
                    st.stuff.append(batch)
            """,
            select=["REP-X"],
        )

    def test_fingerprinted_target_is_clean(self):
        assert "REP-X002" not in _rules(
            """
            '''Fixture.'''


            class Ladder:
                '''Doc.'''

                def __init__(self):
                    self.rungs = []


            def apply(batch):
                '''Doc.'''
                st = Ladder()
                with guarded(st):
                    st.rungs.append(batch)
            """,
            select=["REP-X"],
        )

    def test_alien_param_write_in_region_is_caught(self):
        assert "REP-X001" in _rules(
            """
            '''Fixture.'''


            class Ladder:
                '''Doc.'''

                def __init__(self):
                    self.rungs = []

                def apply(self, batch, journal):
                    '''Doc.'''
                    with guarded(self):
                        self.rungs.append(batch)
                        journal.append(batch)
            """,
            select=["REP-X"],
        )

    def test_region_local_scratch_is_clean(self):
        assert "REP-X001" not in _rules(
            """
            '''Fixture.'''


            class Ladder:
                '''Doc.'''

                def __init__(self):
                    self.rungs = []

                def apply(self, batch):
                    '''Doc.'''
                    with guarded(self):
                        staged = []
                        staged.append(batch)
                        self.rungs.append(staged)
            """,
            select=["REP-X"],
        )


class TestDeterminismTaint:
    """REP-DT001/DT002: unordered values reaching answers."""

    def test_set_iteration_into_return_is_caught(self):
        rules = _rules(
            """
            '''Fixture.'''


            def answers(n):
                '''Doc.'''
                live = {i for i in range(n)}
                return [v * 2 for v in live]
            """,
            select=["REP-DT"],
        )
        assert rules == {"REP-DT001"}

    def test_identity_in_return_is_caught(self):
        assert "REP-DT002" in _rules(
            """
            '''Fixture.'''


            def token(payload):
                '''Doc.'''
                return id(payload)
            """,
            select=["REP-DT"],
        )

    def test_sorted_iteration_is_clean(self):
        assert _rules(
            """
            '''Fixture.'''


            def answers(n):
                '''Doc.'''
                live = {i for i in range(n)}
                return [v * 2 for v in sorted(live)]
            """,
            select=["REP-DT"],
        ) == set()

    def test_interprocedural_unordered_return(self):
        rules = _rules(
            """
            '''Fixture.'''


            def _dirty(n):
                '''Doc.'''
                touched = set()
                touched.add(n)
                return touched


            def answers(n):
                '''Doc.'''
                out = []
                for v in _dirty(n):
                    out.append(v)
                return out
            """,
            select=["REP-DT"],
        )
        assert rules == {"REP-DT001"}

    def test_suppression_covers_taint_rule(self):
        assert _rules(
            """
            '''Fixture.'''


            def answers(n):  # reprolint: disable=REP-DT
                '''Doc.'''
                live = {i for i in range(n)}
                return [v * 2 for v in live]
            """,
            select=["REP-DT"],
        ) == set()


class TestCrossProcess:
    """REP-PX001/PX002: worker-reachable state flow."""

    def test_global_write_in_worker_is_caught(self):
        assert "REP-PX001" in _rules(
            """
            '''Fixture.'''

            COUNTER = 0


            def worker(task):
                '''Doc.'''
                global COUNTER
                COUNTER += 1
                return task


            def run(pool, tasks):
                '''Doc.'''
                return pool.map(worker, tasks)
            """,
            select=["REP-PX"],
        )

    def test_global_write_through_helper_is_caught(self):
        assert "REP-PX001" in _rules(
            """
            '''Fixture.'''

            EVENTS = []


            def _log(event):
                '''Doc.'''
                EVENTS.append(event)


            def worker(task):
                '''Doc.'''
                _log(task)
                return task


            def run(executor, tasks):
                '''Doc.'''
                return executor.map(worker, tasks)
            """,
            select=["REP-PX"],
        )

    def test_unreturned_param_mutation_is_caught(self):
        assert "REP-PX002" in _rules(
            """
            '''Fixture.'''


            def worker(acc, item):
                '''Doc.'''
                acc.append(item)
                return item


            def run(pool, items):
                '''Doc.'''
                return pool.map(worker, items)
            """,
            select=["REP-PX"],
        )

    def test_returned_delta_is_clean(self):
        assert _rules(
            """
            '''Fixture.'''


            def worker(task):
                '''Doc.'''
                delta = {"work": task}
                return delta


            def run(pool, tasks):
                '''Doc.'''
                return pool.map(worker, tasks)
            """,
            select=["REP-PX"],
        ) == set()

    def test_non_pool_receiver_is_not_a_seed(self):
        assert _rules(
            """
            '''Fixture.'''

            COUNTER = 0


            def bump(task):
                '''Doc.'''
                global COUNTER
                COUNTER += 1
                return task


            def run(registry, tasks):
                '''Doc.'''
                return registry.map(bump, tasks)
            """,
            select=["REP-PX"],
        ) == set()
