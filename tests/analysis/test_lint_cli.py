"""CLI behaviour: path validation, prefix select, statistics, baseline
round-trips, the summary cache, autofix idempotence, and SARIF output."""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis import Baseline, lint_paths
from repro.analysis.cache import SummaryCache
from repro.analysis.cli import main

DIRTY = """\
'''Fixture.'''


def answers(n):
    '''Doc.'''
    live = {i for i in range(n)}
    return [v * 2 for v in live]
"""

CLEAN = """\
'''Fixture.'''


def answers(n):
    '''Doc.'''
    return list(range(n))
"""


@pytest.fixture()
def sandbox(tmp_path, monkeypatch):
    """Run the CLI from an isolated cwd so the repo baseline/cache stay out."""
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestPathValidation:
    def test_missing_path_exits_2(self, sandbox, capsys):
        assert main(["nope/missing.py", "--no-cache"]) == 2
        assert "path does not exist: nope/missing.py" in capsys.readouterr().err

    def test_non_python_file_exits_2(self, sandbox, capsys):
        (sandbox / "notes.txt").write_text("not code\n")
        assert main(["notes.txt", "--no-cache"]) == 2
        assert "not a Python file or directory" in capsys.readouterr().err


class TestSelect:
    def test_unknown_prefix_exits_2(self, sandbox, capsys):
        (sandbox / "m.py").write_text(CLEAN)
        assert main(["m.py", "--select", "REP-ZZ", "--no-cache"]) == 2
        assert "unknown rule id(s) or prefix(es): REP-ZZ" in capsys.readouterr().err

    def test_family_prefix_selects_members(self, sandbox, capsys):
        (sandbox / "m.py").write_text(
            "'''Fixture.'''\nimport random\n\n\ndef pick(xs):\n"
            "    '''Doc.'''\n    return random.choice(xs)\n"
        )
        assert main(["m.py", "--select", "REP-D", "--no-cache"]) == 1
        out = capsys.readouterr().out
        assert "REP-D001" in out

    def test_list_rules_includes_interprocedural_families(self, sandbox, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        listed = {line.split()[0] for line in out.splitlines() if line}
        assert {"REP-CF001", "REP-X001", "REP-X002", "REP-DT001",
                "REP-DT002", "REP-PX001", "REP-PX002"} <= listed


class TestStatistics:
    def test_counts_per_rule(self, sandbox, capsys):
        (sandbox / "m.py").write_text(DIRTY)
        assert main(["m.py", "--statistics", "--no-cache"]) == 1
        out = capsys.readouterr().out
        assert "REP-DT001" in out
        assert "total" in out


class TestBaseline:
    def test_update_then_clean_exit(self, sandbox, capsys):
        (sandbox / "m.py").write_text(DIRTY)
        assert main(["m.py", "--update-baseline", "--no-cache"]) == 0
        capsys.readouterr()
        assert main(["m.py", "--no-cache"]) == 0
        assert "baselined" in capsys.readouterr().out

    def test_round_trip_preserves_justifications(self, sandbox, capsys):
        (sandbox / "m.py").write_text(DIRTY)
        assert main(["m.py", "--update-baseline", "--no-cache"]) == 0
        payload = json.loads((sandbox / ".reprolint-baseline.json").read_text())
        for entry in payload["entries"]:
            entry["justification"] = "accepted: fixture exercises the sink"
        (sandbox / ".reprolint-baseline.json").write_text(json.dumps(payload))
        assert main(["m.py", "--update-baseline", "--no-cache"]) == 0
        payload = json.loads((sandbox / ".reprolint-baseline.json").read_text())
        assert all(
            e["justification"] == "accepted: fixture exercises the sink"
            for e in payload["entries"]
        )

    def test_no_baseline_reports_everything(self, sandbox, capsys):
        (sandbox / "m.py").write_text(DIRTY)
        assert main(["m.py", "--update-baseline", "--no-cache"]) == 0
        capsys.readouterr()
        assert main(["m.py", "--no-baseline", "--no-cache"]) == 1

    def test_corrupt_baseline_exits_2(self, sandbox, capsys):
        (sandbox / "m.py").write_text(CLEAN)
        (sandbox / ".reprolint-baseline.json").write_text("{not json")
        assert main(["m.py", "--no-cache"]) == 2
        assert "reprolint:" in capsys.readouterr().err


class TestCache:
    def test_second_run_hits(self, sandbox):
        (sandbox / "m.py").write_text(DIRTY)
        cache_dir = str(sandbox / "cache")
        cold = SummaryCache(cache_dir)
        lint_paths([str(sandbox / "m.py")], cache=cold)
        assert cold.misses >= 1 and cold.hits == 0
        warm = SummaryCache(cache_dir)
        first = lint_paths([str(sandbox / "m.py")], cache=warm)
        assert warm.hits >= 1
        assert [f.rule for f in first.findings] == ["REP-DT001"]

    def test_corrupt_entry_is_a_miss_not_an_error(self, sandbox):
        (sandbox / "m.py").write_text(DIRTY)
        cache_dir = sandbox / "cache"
        lint_paths([str(sandbox / "m.py")], cache=SummaryCache(str(cache_dir)))
        corrupted = 0
        for root, _dirs, files in os.walk(cache_dir):
            for name in files:
                if name.endswith(".pickle"):
                    with open(os.path.join(root, name), "wb") as fh:
                        fh.write(b"\x80garbage")
                    corrupted += 1
        assert corrupted >= 1
        cache = SummaryCache(str(cache_dir))
        report = lint_paths([str(sandbox / "m.py")], cache=cache)
        assert cache.hits == 0 and cache.misses >= 1
        assert [f.rule for f in report.findings] == ["REP-DT001"]

    def test_edit_invalidates_entry(self, sandbox):
        target = sandbox / "m.py"
        target.write_text(DIRTY)
        cache_dir = str(sandbox / "cache")
        lint_paths([str(target)], cache=SummaryCache(cache_dir))
        target.write_text(CLEAN)
        cache = SummaryCache(cache_dir)
        report = lint_paths([str(target)], cache=cache)
        assert cache.hits == 0
        assert report.findings == []


class TestAutofix:
    def test_fix_applies_and_is_idempotent(self, sandbox, capsys):
        target = sandbox / "m.py"
        target.write_text(DIRTY)
        assert main(["m.py", "--fix", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "fixed 1 site(s)" in out
        assert "for v in sorted(live)" in target.read_text()
        fixed_once = target.read_text()
        assert main(["m.py", "--fix", "--no-cache"]) == 0
        assert "fixed" not in capsys.readouterr().out
        assert target.read_text() == fixed_once


class TestSarif:
    def test_output_is_valid_sarif(self, sandbox, capsys):
        (sandbox / "m.py").write_text(DIRTY)
        assert main(["m.py", "--format", "sarif", "--no-cache"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        assert doc["$schema"].endswith("sarif-schema-2.1.0.json")
        run = doc["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        rule_ids = [r["id"] for r in rules]
        assert "REP-DT001" in rule_ids
        (result,) = run["results"]
        assert result["ruleId"] == "REP-DT001"
        assert result["ruleIndex"] == rule_ids.index("REP-DT001")
        loc = result["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "m.py"
        assert loc["region"]["startLine"] == 7

    def test_clean_tree_has_empty_results(self, sandbox, capsys):
        (sandbox / "m.py").write_text(CLEAN)
        assert main(["m.py", "--format", "sarif", "--no-cache"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["runs"][0]["results"] == []


class TestForwarding:
    def test_repro_lint_forwards_flags(self, sandbox, capsys):
        from repro.cli import main as repro_main

        (sandbox / "m.py").write_text(DIRTY)
        assert repro_main(["lint", "m.py", "--no-baseline", "--no-cache"]) == 1
        assert "REP-DT001" in capsys.readouterr().out

    def test_repro_lint_propagates_usage_errors(self, sandbox, capsys):
        from repro.cli import main as repro_main

        assert repro_main(["lint", "missing.py", "--no-cache"]) == 2


def test_baseline_write_is_deterministic(tmp_path):
    path = tmp_path / "b.json"
    from repro.analysis import Finding

    findings = [
        Finding("b.py", 9, "REP-DT001", "m2"),
        Finding("a.py", 3, "REP-PX001", "m1"),
        Finding("a.py", 7, "REP-PX001", "m1"),  # dup entry collapses
    ]
    base = Baseline(path=str(path))
    count = base.write(str(path), findings)
    assert count == 2
    first = path.read_text()
    base2 = Baseline.load(str(path))
    base2.write(str(path), findings)
    assert path.read_text() == first
