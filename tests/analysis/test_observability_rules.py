"""REP-O001..O003: span-taxonomy and Tracer-clock rules."""

from __future__ import annotations

import textwrap

from repro.analysis import lint_source


def rules_of(
    source: str, cost_scope: bool = True, path: str = "<string>"
) -> set[str]:
    return {
        f.rule
        for f in lint_source(
            textwrap.dedent(source), path, cost_scope=cost_scope
        )
    }


def test_o001_fires_on_unregistered_span_name():
    violating = """
        '''Module.'''

        from ..instrument import trace as _trace


        def drop():
            '''Doc.'''
            with _trace.span("game.dorp"):
                pass
    """
    assert "REP-O001" in rules_of(violating)


def test_o001_silent_for_registered_names():
    clean = """
        '''Module.'''

        from ..instrument import trace as _trace


        def drop():
            '''Doc.'''
            with _trace.span("game.drop", detail={"tokens": 3}):
                with _trace.span("game.drop.phase"):
                    pass
    """
    assert "REP-O001" not in rules_of(clean)


def test_o002_fires_on_dynamic_span_name():
    violating = """
        '''Module.'''

        from ..instrument import trace as _trace


        def drop(which):
            '''Doc.'''
            with _trace.span("game." + which):
                pass
    """
    assert "REP-O002" in rules_of(violating)


def test_rules_scoped_to_cost_packages():
    violating = """
        '''Module.'''

        from ..instrument import trace as _trace


        def drop():
            '''Doc.'''
            with _trace.span("game.dorp"):
                pass
    """
    assert "REP-O001" not in rules_of(violating, cost_scope=False)


def test_bare_span_import_is_checked():
    violating = """
        '''Module.'''

        from ..instrument.trace import span


        def drop():
            '''Doc.'''
            with span("nope.nope"):
                pass
    """
    assert "REP-O001" in rules_of(violating)


def test_unrelated_span_methods_are_ignored():
    clean = """
        '''Module.'''


        def layout(doc):
            '''A .span() on something that is not a tracer.'''
            return doc.span("not-a-taxonomy-name")
    """
    assert rules_of(clean) == set()


def test_suppression_comment_silences():
    suppressed = """
        '''Module.'''

        from ..instrument import trace as _trace


        def drop():
            '''Doc.'''
            with _trace.span("custom.site"):  # reprolint: disable=REP-O001
                pass
    """
    assert "REP-O001" not in rules_of(suppressed)


def test_real_instrumented_modules_are_clean():
    import pathlib

    import repro.core.tokens as tokens_mod
    import repro.core.coreness as coreness_mod

    for mod in (tokens_mod, coreness_mod):
        source = pathlib.Path(mod.__file__).read_text()
        assert {r for r in rules_of(source) if r.startswith("REP-O")} == set()


# -- REP-O003: the Tracer clock ------------------------------------------------

_CLOCK_VIOLATION = """
    '''Module.'''

    import time


    def measure():
        '''Doc.'''
        return time.perf_counter()
"""


def test_o003_fires_on_direct_time_reads():
    assert "REP-O003" in rules_of(_CLOCK_VIOLATION)


def test_o003_fires_outside_cost_scope_too():
    # unlike O001/O002, the clock rule covers benchmarks and tests
    assert "REP-O003" in rules_of(_CLOCK_VIOLATION, cost_scope=False)


def test_o003_fires_on_from_import_spelling():
    violating = """
        '''Module.'''

        from time import monotonic as mono


        def measure():
            '''Doc.'''
            return mono()
    """
    assert "REP-O003" in rules_of(violating)


def test_o003_exempts_instrument_package():
    assert "REP-O003" not in rules_of(
        _CLOCK_VIOLATION, path="src/repro/instrument/wallclock.py"
    )


def test_o003_silent_for_tracer_clock_and_non_clock_time_use():
    clean = """
        '''Module.'''

        import time

        from repro.instrument import wallclock


        def measure():
            '''sleep() is not a clock read; monotonic() is the Tracer clock.'''
            time.sleep(0.01)
            return wallclock.monotonic()
    """
    assert "REP-O003" not in rules_of(clean)


def test_o003_repo_is_clean_outside_instrument():
    import pathlib

    import repro

    root = pathlib.Path(repro.__file__).parent
    hits = []
    for py in sorted(root.rglob("*.py")):
        rel = py.relative_to(root.parent)
        found = rules_of(py.read_text(), path=str(rel))
        if "REP-O003" in found:
            hits.append(str(rel))
    assert hits == []
