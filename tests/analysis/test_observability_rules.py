"""REP-O001/O002: span-taxonomy rules, firing and silent fixtures."""

from __future__ import annotations

import textwrap

from repro.analysis import lint_source


def rules_of(source: str, cost_scope: bool = True) -> set[str]:
    return {f.rule for f in lint_source(textwrap.dedent(source), cost_scope=cost_scope)}


def test_o001_fires_on_unregistered_span_name():
    violating = """
        '''Module.'''

        from ..instrument import trace as _trace


        def drop():
            '''Doc.'''
            with _trace.span("game.dorp"):
                pass
    """
    assert "REP-O001" in rules_of(violating)


def test_o001_silent_for_registered_names():
    clean = """
        '''Module.'''

        from ..instrument import trace as _trace


        def drop():
            '''Doc.'''
            with _trace.span("game.drop", detail={"tokens": 3}):
                with _trace.span("game.drop.phase"):
                    pass
    """
    assert "REP-O001" not in rules_of(clean)


def test_o002_fires_on_dynamic_span_name():
    violating = """
        '''Module.'''

        from ..instrument import trace as _trace


        def drop(which):
            '''Doc.'''
            with _trace.span("game." + which):
                pass
    """
    assert "REP-O002" in rules_of(violating)


def test_rules_scoped_to_cost_packages():
    violating = """
        '''Module.'''

        from ..instrument import trace as _trace


        def drop():
            '''Doc.'''
            with _trace.span("game.dorp"):
                pass
    """
    assert "REP-O001" not in rules_of(violating, cost_scope=False)


def test_bare_span_import_is_checked():
    violating = """
        '''Module.'''

        from ..instrument.trace import span


        def drop():
            '''Doc.'''
            with span("nope.nope"):
                pass
    """
    assert "REP-O001" in rules_of(violating)


def test_unrelated_span_methods_are_ignored():
    clean = """
        '''Module.'''


        def layout(doc):
            '''A .span() on something that is not a tracer.'''
            return doc.span("not-a-taxonomy-name")
    """
    assert rules_of(clean) == set()


def test_suppression_comment_silences():
    suppressed = """
        '''Module.'''

        from ..instrument import trace as _trace


        def drop():
            '''Doc.'''
            with _trace.span("custom.site"):  # reprolint: disable=REP-O001
                pass
    """
    assert "REP-O001" not in rules_of(suppressed)


def test_real_instrumented_modules_are_clean():
    import pathlib

    import repro.core.tokens as tokens_mod
    import repro.core.coreness as coreness_mod

    for mod in (tokens_mod, coreness_mod):
        source = pathlib.Path(mod.__file__).read_text()
        assert {r for r in rules_of(source) if r.startswith("REP-O")} == set()
