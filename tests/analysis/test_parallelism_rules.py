"""REP-P001: rung sweeps must route through the executor protocol."""

from __future__ import annotations

import textwrap

from repro.analysis import lint_source


def rules_of(source: str, cost_scope: bool = True) -> set[str]:
    return {f.rule for f in lint_source(textwrap.dedent(source), cost_scope=cost_scope)}


VIOLATING = """
    def insert_batch(self, edges):
        '''Insert.'''
        self.cm.charge(work=len(edges), depth=1)
        for rung in self.rungs:
            rung.insert_batch(edges)
"""


def test_p001_fires_on_direct_rung_batch_loop():
    assert "REP-P001" in rules_of(VIOLATING)


def test_p001_fires_on_index_loop_over_rungs():
    violating = """
        def delete_batch(self, edges):
            '''Delete.'''
            self.cm.charge(work=len(edges), depth=1)
            for i in range(len(self.rungs)):
                self.rungs[i].delete_batch(edges)
    """
    assert "REP-P001" in rules_of(violating)


def test_p001_fires_on_apply_ops_replay():
    violating = """
        def replay(self, ops):
            '''Replay.'''
            self.cm.tick()
            for rung in self.rungs:
                rung.apply_ops(ops)
    """
    assert "REP-P001" in rules_of(violating)


def test_p001_silent_on_read_only_sweep():
    clean = """
        def check_invariants(self):
            '''Audit.'''
            for rung in self.rungs:
                rung.check_invariants()
    """
    assert "REP-P001" not in rules_of(clean)


def test_p001_silent_on_task_building_loop():
    clean = """
        def dispatch(self, method, edges):
            '''Dispatch through the executor.'''
            self.cm.charge(work=len(edges), depth=1)
            tasks = [
                RungTask(structure=rung, method=method, args=(edges,))
                for rung in self.rungs
            ]
            self.executor.run_structures(self.cm, tasks)
    """
    assert "REP-P001" not in rules_of(clean)


def test_p001_respects_suppression():
    suppressed = """
        def flush_all_pending(self):
            '''Materialise deferred rungs for a checkpoint.'''
            self.cm.tick()
            for i in range(len(self.rungs)):  # reprolint: disable=REP-P001
                self.rungs[i].apply_ops(self.pending[i])
    """
    assert "REP-P001" not in rules_of(suppressed)


def test_p001_silent_outside_cost_scope():
    assert "REP-P001" not in rules_of(VIOLATING, cost_scope=False)
