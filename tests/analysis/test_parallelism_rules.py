"""REP-P001: rung sweeps must route through the executor protocol."""

from __future__ import annotations

import textwrap

from repro.analysis import lint_source


def rules_of(source: str, cost_scope: bool = True) -> set[str]:
    return {f.rule for f in lint_source(textwrap.dedent(source), cost_scope=cost_scope)}


VIOLATING = """
    def insert_batch(self, edges):
        '''Insert.'''
        self.cm.charge(work=len(edges), depth=1)
        for rung in self.rungs:
            rung.insert_batch(edges)
"""


def test_p001_fires_on_direct_rung_batch_loop():
    assert "REP-P001" in rules_of(VIOLATING)


def test_p001_fires_on_index_loop_over_rungs():
    violating = """
        def delete_batch(self, edges):
            '''Delete.'''
            self.cm.charge(work=len(edges), depth=1)
            for i in range(len(self.rungs)):
                self.rungs[i].delete_batch(edges)
    """
    assert "REP-P001" in rules_of(violating)


def test_p001_fires_on_apply_ops_replay():
    violating = """
        def replay(self, ops):
            '''Replay.'''
            self.cm.tick()
            for rung in self.rungs:
                rung.apply_ops(ops)
    """
    assert "REP-P001" in rules_of(violating)


def test_p001_silent_on_read_only_sweep():
    clean = """
        def check_invariants(self):
            '''Audit.'''
            for rung in self.rungs:
                rung.check_invariants()
    """
    assert "REP-P001" not in rules_of(clean)


def test_p001_silent_on_task_building_loop():
    clean = """
        def dispatch(self, method, edges):
            '''Dispatch through the executor.'''
            self.cm.charge(work=len(edges), depth=1)
            tasks = [
                RungTask(structure=rung, method=method, args=(edges,))
                for rung in self.rungs
            ]
            self.executor.run_structures(self.cm, tasks)
    """
    assert "REP-P001" not in rules_of(clean)


def test_p001_respects_suppression():
    suppressed = """
        def flush_all_pending(self):
            '''Materialise deferred rungs for a checkpoint.'''
            self.cm.tick()
            for i in range(len(self.rungs)):  # reprolint: disable=REP-P001
                self.rungs[i].apply_ops(self.pending[i])
    """
    assert "REP-P001" not in rules_of(suppressed)


def test_p001_silent_outside_cost_scope():
    assert "REP-P001" not in rules_of(VIOLATING, cost_scope=False)

# -- REP-P002: per-edge Python-object allocation ------------------------------


ALLOCATING_LOOP = """
    def insert_batch(self, edges):
        '''Insert.'''
        self.cm.charge(work=len(edges), depth=1)
        for u, v in edges:
            self.adj.setdefault(u, set()).add(v)
"""


def test_p002_fires_on_setdefault_growth_in_edge_loop():
    assert "REP-P002" in rules_of(ALLOCATING_LOOP)


def test_p002_fires_on_class_construction_in_edge_loop():
    violating = """
        def insert_batch(self, edges):
            '''Insert.'''
            self.cm.charge(work=len(edges), depth=1)
            for u, v in edges:
                self.nodes.append(TreapNode(u, v))
    """
    assert "REP-P002" in rules_of(violating)


def test_p002_fires_on_per_item_mutation_allocation():
    violating = """
        def insert(self, key):
            '''File one key.'''
            self._root = _join(self._root, _Node(key))
    """
    assert "REP-P002" in rules_of(violating)


def test_p002_silent_on_allocation_free_edge_loop():
    clean = """
        def delete_batch(self, edges):
            '''Delete.'''
            self.cm.charge(work=len(edges), depth=1)
            for u, v in edges:
                self.adj[u].discard(v)
    """
    assert "REP-P002" not in rules_of(clean)


def test_p002_silent_on_raising_path():
    clean = """
        def insert_batch(self, edges):
            '''Insert.'''
            self.cm.charge(work=len(edges), depth=1)
            for u, v in edges:
                if u == v:
                    raise BatchError(f"self-loop {u}")
                self.adj[u].add(v)
    """
    assert "REP-P002" not in rules_of(clean)


def test_p002_silent_on_hoisted_allocation():
    clean = """
        def insert_batch(self, edges):
            '''Insert.'''
            self.cm.charge(work=len(edges), depth=1)
            touched = set()
            for u, v in edges:
                touched.add(u)
                touched.add(v)
    """
    assert "REP-P002" not in rules_of(clean)


def test_p002_respects_suppression():
    suppressed = """
        def insert_batch(self, edges):
            '''Insert.'''
            self.cm.charge(work=len(edges), depth=1)
            for u, v in edges:
                self.adj.setdefault(u, set()).add(v)  # reprolint: disable=REP-P002
    """
    assert "REP-P002" not in rules_of(suppressed)


def test_p002_silent_outside_cost_scope():
    assert "REP-P002" not in rules_of(ALLOCATING_LOOP, cost_scope=False)
