"""Whole-program model: module naming, call-graph resolution, fixpoints,
taint propagation, capture-capability — over synthetic fixture packages."""

from __future__ import annotations

import textwrap

from repro.analysis.project import (
    ProjectContext,
    module_name_for,
    summarize_module,
)


def build_project(tmp_path, files: dict) -> ProjectContext:
    """Write a fixture package and summarize every module into a project."""
    summaries = []
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    for rel in files:
        path = tmp_path / rel
        summaries.append(summarize_module(str(path), path.read_text()))
    return ProjectContext(summaries)


class TestModuleNaming:
    def test_walks_up_through_init_files(self, tmp_path):
        (tmp_path / "pkg" / "sub").mkdir(parents=True)
        (tmp_path / "pkg" / "__init__.py").write_text("")
        (tmp_path / "pkg" / "sub" / "__init__.py").write_text("")
        (tmp_path / "pkg" / "sub" / "mod.py").write_text("x = 1\n")
        name, is_pkg = module_name_for(str(tmp_path / "pkg" / "sub" / "mod.py"))
        assert name == "pkg.sub.mod" and not is_pkg
        name, is_pkg = module_name_for(str(tmp_path / "pkg" / "sub" / "__init__.py"))
        assert name == "pkg.sub" and is_pkg

    def test_bare_file_outside_package(self, tmp_path):
        (tmp_path / "script.py").write_text("x = 1\n")
        name, is_pkg = module_name_for(str(tmp_path / "script.py"))
        assert name == "script" and not is_pkg


class TestCallGraph:
    FILES = {
        "pkg/__init__.py": "",
        "pkg/helpers.py": """
            def charge_it(cm, k):
                cm.charge(work=k, depth=1)

            def idle():
                return 0
            """,
        "pkg/mod.py": """
            from .helpers import charge_it
            from pkg import helpers

            def pub(cm, items):
                charge_it(cm, len(items))

            def via_attr(cm):
                helpers.charge_it(cm, 1)

            def cold():
                return helpers.idle()
            """,
    }

    def test_relative_import_resolution(self, tmp_path):
        project = build_project(tmp_path, self.FILES)
        mod = project.modules["pkg.mod"]
        pub = mod.functions["pub"]
        site = next(s for s in pub.calls if s.name == "charge_it")
        callee = project.resolve_call(pub, site)
        assert callee is not None and callee.qualname == "charge_it"
        assert callee.module == "pkg.helpers"

    def test_module_attr_chain_resolution(self, tmp_path):
        project = build_project(tmp_path, self.FILES)
        via = project.modules["pkg.mod"].functions["via_attr"]
        site = next(s for s in via.calls if s.name == "charge_it")
        assert project.resolve_call(via, site) is not None

    def test_may_charge_fixpoint_crosses_modules(self, tmp_path):
        project = build_project(tmp_path, self.FILES)
        mod = project.modules["pkg.mod"]
        assert mod.functions["pub"].may_charge
        assert mod.functions["via_attr"].may_charge
        assert not mod.functions["cold"].may_charge


class TestMethodResolution:
    FILES = {
        "pkg/__init__.py": "",
        "pkg/base.py": """
            class Base:
                def _bump(self):
                    self.cm.tick("bump")
            """,
        "pkg/derived.py": """
            from .base import Base

            class Derived(Base):
                def __init__(self, cm):
                    self.cm = cm
                    self.data = {}

                def apply(self, items):
                    self.data.update(items)
                    self._bump()
            """,
    }

    def test_self_method_resolves_through_inheritance(self, tmp_path):
        project = build_project(tmp_path, self.FILES)
        apply_fs = project.modules["pkg.derived"].functions["Derived.apply"]
        site = next(s for s in apply_fs.calls if s.name == "_bump")
        callee = project.resolve_call(apply_fs, site)
        assert callee is not None and callee.qualname == "Base._bump"
        assert apply_fs.may_charge and apply_fs.may_mutate

    def test_class_has_cm_through_inheritance(self, tmp_path):
        project = build_project(tmp_path, self.FILES)
        assert project.class_has_cm("pkg.derived", "Derived")


class TestTaintPropagation:
    def _fs(self, tmp_path, body: str, name="f"):
        project = build_project(tmp_path, {"mod.py": body})
        return project, project.modules["mod"].functions[name]

    def test_set_iteration_taints_through_accumulation(self, tmp_path):
        _, fs = self._fs(
            tmp_path,
            """
            def f(n):
                live = {i for i in range(n)}
                out = []
                for v in live:
                    out.append(v * 2)
                return out
            """,
        )
        assert any(t.rule == "REP-DT001" for t in fs.taint_findings)

    def test_sorted_sanitizes(self, tmp_path):
        _, fs = self._fs(
            tmp_path,
            """
            def f(n):
                live = {i for i in range(n)}
                out = []
                for v in sorted(live):
                    out.append(v * 2)
                return out
            """,
        )
        assert fs.taint_findings == []

    def test_private_functions_have_no_return_sink(self, tmp_path):
        _, fs = self._fs(
            tmp_path,
            """
            def _f(n):
                live = {i for i in range(n)}
                return [v for v in live]
            """,
            name="_f",
        )
        assert fs.taint_findings == []

    def test_returns_unordered_fact(self, tmp_path):
        _, fs = self._fs(
            tmp_path,
            """
            def f(n):
                touched = set()
                touched.add(n)
                return touched
            """,
        )
        assert fs.returns_unordered
        # returning the set itself is not a finding — order is unexposed
        assert fs.taint_findings == []

    def test_id_in_comparison_key(self, tmp_path):
        _, fs = self._fs(
            tmp_path,
            """
            def f(xs):
                return sorted(xs, key=lambda v: id(v))
            """,
        )
        assert any(t.rule == "REP-DT002" for t in fs.taint_findings)


class TestCaptureCapability:
    FILES = {
        "mod.py": """
            class Ladder:
                def __init__(self):
                    self.rungs = []

            class Wrapper(Ladder):
                pass

            class Plain:
                def __init__(self):
                    self.stuff = []
            """,
    }

    def test_fingerprint_attr_is_capable(self, tmp_path):
        project = build_project(tmp_path, self.FILES)
        assert project.capture_capable("mod", "Ladder") is True

    def test_capability_inherits(self, tmp_path):
        project = build_project(tmp_path, self.FILES)
        assert project.capture_capable("mod", "Wrapper") is True

    def test_no_fingerprint_is_incapable(self, tmp_path):
        project = build_project(tmp_path, self.FILES)
        assert project.capture_capable("mod", "Plain") is False

    def test_unknown_class_is_unresolvable(self, tmp_path):
        project = build_project(tmp_path, self.FILES)
        assert project.capture_capable("mod", "Elsewhere") is not True
