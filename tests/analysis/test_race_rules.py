"""REP-R001/R002/R003: simulated-PRAM race rules, firing and silent fixtures."""

from __future__ import annotations

import textwrap

from repro.analysis import lint_source


def rules_of(source: str) -> set[str]:
    return {f.rule for f in lint_source(textwrap.dedent(source))}


# ---------------------------------------------------------------- REP-R001


def test_r001_fires_on_shared_scalar_write():
    violating = """
        def phase(cm, vertices):
            '''One phase.'''
            changed = False
            with cm.parallel() as region:
                for v in sorted(vertices):
                    with region.branch():
                        changed = True
            return changed
    """
    assert "REP-R001" in rules_of(violating)


def test_r001_silent_on_branch_local_scalar():
    clean = """
        def phase(cm, vertices, updates):
            '''One phase.'''
            with cm.parallel() as region:
                for v in sorted(vertices):
                    with region.branch():
                        best = v * 2
                        updates.append((v, best))
            return sorted(updates)
    """
    assert "REP-R001" not in rules_of(clean)


def test_r001_fires_on_closure_write_in_parallel_worker():
    violating = """
        def count(cm, items):
            '''Count items.'''
            total = 0

            def bump(item):
                nonlocal total
                total = total + 1

            cm.pfor(items, bump)
            return total
    """
    assert "REP-R001" in rules_of(violating)


# ---------------------------------------------------------------- REP-R002


def test_r002_fires_on_non_loop_key_write():
    violating = """
        def propose(cm, frontier, proposals):
            '''Proposal round.'''
            with cm.parallel() as region:
                for v in sorted(frontier):
                    with region.branch():
                        target = v // 2
                        proposals[target] = v
    """
    assert "REP-R002" in rules_of(violating)


def test_r002_silent_on_loop_var_key():
    clean = """
        def mark(cm, frontier, level):
            '''Per-vertex slot write.'''
            with cm.parallel() as region:
                for v in sorted(frontier):
                    with region.branch():
                        level[v] = 1
    """
    assert "REP-R002" not in rules_of(clean)


def test_r002_suppression():
    suppressed = """
        def propose(cm, frontier, proposals):
            '''Proposal round.'''
            with cm.parallel() as region:
                for v in sorted(frontier):
                    with region.branch():
                        target = v // 2
                        proposals[target] = v  # reprolint: disable=REP-R002
    """
    assert "REP-R002" not in rules_of(suppressed)


# ---------------------------------------------------------------- REP-R003


def test_r003_fires_on_unmediated_gather():
    violating = """
        def gather(cm, vertices, out):
            '''Collect results.'''
            sends = []
            with cm.parallel() as region:
                for v in sorted(vertices):
                    with region.branch():
                        sends.append(v)
            for v in sends:
                out[v] = True
    """
    assert "REP-R003" in rules_of(violating)


def test_r003_silent_when_sorted_before_consumption():
    clean = """
        def gather(cm, vertices, out):
            '''Collect results.'''
            sends = []
            with cm.parallel() as region:
                for v in sorted(vertices):
                    with region.branch():
                        sends.append(v)
            for v in sorted(sends):
                out[v] = True
    """
    assert "REP-R003" not in rules_of(clean)


def test_r003_silent_when_fed_to_arbitrary_winners():
    clean = """
        def gather(cm, vertices):
            '''Collect proposals.'''
            sends = []
            with cm.parallel() as region:
                for v in sorted(vertices):
                    with region.branch():
                        sends.append((v // 2, v))
            return arbitrary_winners(parallel_sort(sends, cm=cm), cm=cm)
    """
    assert "REP-R003" not in rules_of(clean)


def test_set_add_is_exempt_commutative():
    clean = """
        def collect(cm, vertices):
            '''Commutative gather.'''
            seen = set()
            with cm.parallel() as region:
                for v in sorted(vertices):
                    with region.branch():
                        seen.add(v)
            return seen
    """
    assert "REP-R003" not in rules_of(clean)
    assert "REP-R002" not in rules_of(clean)
