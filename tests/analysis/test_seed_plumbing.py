"""Seed plumbing regression: the randomised modules accept shared generators
and stay reprolint-clean (REP-D001/D002 guard against regressions)."""

from __future__ import annotations

import os
import random

from repro.analysis import lint_paths
from repro.graphs import generators, streams
from repro.pram.connectivity import connected_components
from repro.rng import coerce_rng

SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))), "src"
)

SEEDED_MODULES = [
    os.path.join(SRC, "repro", "graphs", "generators.py"),
    os.path.join(SRC, "repro", "graphs", "streams.py"),
    os.path.join(SRC, "repro", "pram", "connectivity.py"),
    os.path.join(SRC, "repro", "rng.py"),
]


def test_seeded_modules_stay_lint_clean():
    report = lint_paths(SEEDED_MODULES)
    assert report.ok, report.render()


def test_coerce_rng_passthrough_and_seeding():
    rng = random.Random(7)
    assert coerce_rng(rng) is rng
    a, b = coerce_rng(7), coerce_rng(7)
    assert a is not b
    assert [a.random() for _ in range(3)] == [b.random() for _ in range(3)]


def test_generators_accept_shared_generator():
    by_int = generators.erdos_renyi(30, 60, seed=5)
    by_rng = generators.erdos_renyi(30, 60, seed=random.Random(5))
    assert by_int == by_rng


def test_streams_accept_shared_generator():
    _, edges = generators.erdos_renyi(20, 40, seed=1)
    by_int = streams.insert_then_delete(edges, 8, seed=3)
    by_rng = streams.insert_then_delete(edges, 8, seed=random.Random(3))
    assert by_int == by_rng

    churn_int = streams.churn(16, steps=10, batch_size=4, seed=9)
    churn_rng = streams.churn(16, steps=10, batch_size=4, seed=random.Random(9))
    assert churn_int == churn_rng

    ramp_int = streams.density_ramp(20, block=8, levels=3, per_level=5, seed=2)
    ramp_rng = streams.density_ramp(
        20, block=8, levels=3, per_level=5, seed=random.Random(2)
    )
    assert ramp_int == ramp_rng


def test_connectivity_accepts_shared_generator():
    _, edges = generators.erdos_renyi(25, 35, seed=4)
    verts = {v for e in edges for v in e}
    by_int, _ = connected_components(verts, edges=edges, seed=11)
    by_rng, _ = connected_components(verts, edges=edges, seed=random.Random(11))
    assert by_int == by_rng
