"""Property-based tests for the application layer under random schedules."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps import ExplicitColoring, MaximalMatching
from repro.config import Constants
from repro.graphs.graph import norm_edge


SMALL = Constants(sample_c=0.5, min_B=4, duplication_cap=8)


@st.composite
def app_schedules(draw):
    """Valid insert/delete schedules over a small vertex universe."""
    n = draw(st.integers(6, 18))
    steps = draw(st.integers(1, 6))
    live: set = set()
    schedule = []
    for _ in range(steps):
        if draw(st.booleans()) or not live:
            size = draw(st.integers(1, 6))
            fresh = set()
            for _ in range(size * 3):
                u = draw(st.integers(0, n - 1))
                v = draw(st.integers(0, n - 1))
                if u != v:
                    e = norm_edge(u, v)
                    if e not in live and e not in fresh:
                        fresh.add(e)
                if len(fresh) >= size:
                    break
            if fresh:
                live |= fresh
                schedule.append(("insert", tuple(sorted(fresh))))
        else:
            pool = sorted(live)
            k = draw(st.integers(1, len(pool)))
            idx = draw(st.permutations(range(len(pool))))
            victims = tuple(pool[i] for i in idx[:k])
            live -= set(victims)
            schedule.append(("delete", victims))
    return n, schedule


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(app_schedules())
def test_matching_maximal_through_any_schedule(schedule):
    n, ops = schedule
    mm = MaximalMatching(6, n, eps=0.4, constants=SMALL, seed=1)
    for kind, edges in ops:
        if kind == "insert":
            mm.insert_batch(edges)
        else:
            mm.delete_batch(edges)
        mm.check_matching()


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(app_schedules())
def test_coloring_proper_through_any_schedule(schedule):
    n, ops = schedule
    ec = ExplicitColoring(6, n, eps=0.4, constants=SMALL, seed=2)
    live: set = set()
    for kind, edges in ops:
        if kind == "insert":
            ec.insert_batch(edges)
            live |= set(edges)
        else:
            ec.delete_batch(edges)
            live -= set(edges)
        ec.check_proper(live)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 100_000))
def test_matching_is_subset_of_edges_always(seed):
    from repro.graphs import streams

    mm = MaximalMatching(5, 16, eps=0.4, constants=SMALL, seed=seed % 7)
    live: set = set()
    for op in streams.churn(16, steps=10, batch_size=4, seed=seed):
        if op.kind == "insert":
            mm.insert_batch(op.edges)
            live |= set(op.edges)
        else:
            mm.delete_batch(op.edges)
            live -= set(op.edges)
        assert mm.matching() <= live
