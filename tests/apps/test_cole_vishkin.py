"""Tests for Cole–Vishkin pseudoforest coloring."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import cv_six_coloring, cv_three_coloring, local_cv_color
from repro.apps.cole_vishkin import _cv_step, check_proper


def random_pseudoforest(n, seed, root_prob=0.1):
    rng = random.Random(seed)
    return {
        v: (rng.randrange(v) if v > 0 and rng.random() > root_prob else None)
        for v in range(n)
    }


class TestCvStep:
    def test_produces_small_colors(self):
        assert _cv_step(0b1010, 0b1000) == 2 * 1 + 1
        assert _cv_step(5, 4) == 1  # lowest differing bit 0, bit value 1

    def test_requires_distinct(self):
        with pytest.raises(ValueError):
            _cv_step(3, 3)

    def test_preserves_properness(self):
        # if colors differ, the new colors of an adjacent pair differ too
        for a in range(16):
            for b in range(16):
                if a != b:
                    # child a with parent b, parent b with grandparent g:
                    # different i or different bit => differ; verified by
                    # the global tests; here check basic domain
                    assert 0 <= _cv_step(a, b) < 8


class TestSixColoring:
    @pytest.mark.parametrize("seed", range(4))
    def test_proper_and_small(self, seed):
        succ = random_pseudoforest(150, seed)
        colors = cv_six_coloring(range(150), succ)
        check_proper(range(150), succ, colors)
        assert max(colors.values()) <= 5

    def test_long_path(self):
        n = 500
        succ = {v: v - 1 if v else None for v in range(n)}
        colors = cv_six_coloring(range(n), succ)
        check_proper(range(n), succ, colors)

    def test_star_pseudoforest(self):
        succ = {v: 0 for v in range(1, 50)}
        succ[0] = None
        colors = cv_six_coloring(range(50), succ)
        check_proper(range(50), succ, colors)


class TestThreeColoring:
    @pytest.mark.parametrize("seed", range(4))
    def test_proper_and_three(self, seed):
        succ = random_pseudoforest(150, seed + 10)
        colors = cv_three_coloring(range(150), succ)
        check_proper(range(150), succ, colors)
        assert max(colors.values()) <= 2

    def test_single_vertex(self):
        assert cv_three_coloring([0], {0: None})[0] in (0, 1, 2)


class TestLocalColoring:
    @pytest.mark.parametrize("seed", range(4))
    def test_local_matches_properness(self, seed):
        n = 120
        succ = random_pseudoforest(n, seed + 20)
        colors = {v: local_cv_color(v, lambda x: succ.get(x), n) for v in range(n)}
        check_proper(range(n), succ, colors)
        assert max(colors.values()) <= 5

    def test_local_is_deterministic(self):
        succ = random_pseudoforest(60, 7)
        a = local_cv_color(10, lambda x: succ.get(x), 60)
        b = local_cv_color(10, lambda x: succ.get(x), 60)
        assert a == b

    def test_long_chain_locality(self):
        # a 10k path: each query only walks O(log* n) hops, so this is fast
        n = 10_000
        succ_fn = lambda v: v - 1 if v else None
        colors = [local_cv_color(v, succ_fn, n) for v in range(0, n, 997)]
        assert all(0 <= c <= 5 for c in colors)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 100_000))
def test_hypothesis_local_proper_on_random_forests(seed):
    n = 40
    succ = random_pseudoforest(n, seed)
    colors = {v: local_cv_color(v, lambda x: succ.get(x), n) for v in range(n)}
    check_proper(range(n), succ, colors)
