"""Tests for the explicit (Cor 1.4) and implicit (Cor 1.5) colorings."""

import pytest

from repro.apps import ExplicitColoring, ImplicitColoring
from repro.config import Constants
from repro.graphs import generators as gen, streams


SMALL = Constants(sample_c=0.5, min_B=4, duplication_cap=8)


class TestExplicitColoring:
    def make(self, rho_max=5, n=32, seed=0):
        return ExplicitColoring(
            rho_max, n, eps=0.4, palette_factor=8.0, constants=SMALL, seed=seed
        )

    def test_proper_after_inserts(self):
        ec = self.make()
        n, edges = gen.erdos_renyi(25, 70, seed=1)
        ec.insert_batch(edges)
        ec.check_proper(edges)

    def test_proper_under_churn(self):
        ec = self.make(rho_max=6, n=24)
        live = set()
        for op in streams.churn(24, steps=24, batch_size=6, seed=2):
            if op.kind == "insert":
                ec.insert_batch(op.edges)
                live |= set(op.edges)
            else:
                ec.delete_batch(op.edges)
                live -= set(op.edges)
            ec.check_proper(live)

    def test_palette_is_fixed(self):
        ec = self.make()
        p1 = ec.palette(5)
        ec.insert_batch([(5, 6)])
        assert ec.palette(5) == p1

    def test_palettes_lazy(self):
        ec = self.make()
        assert ec._palettes == {}
        ec.insert_batch([(0, 1)])
        assert set(ec._palettes) <= {0, 1}

    def test_color_count_bounded(self):
        ec = self.make(rho_max=4, n=30)
        n, edges = gen.grid(5, 6)
        ec.insert_batch(edges)
        used = {ec.color_of(v) for v in range(n)}
        assert len(used) <= ec.C + ec.fallbacks

    def test_isolated_vertex_colorable(self):
        ec = self.make()
        assert ec.color_of(31) >= 1


class TestImplicitColoring:
    def make(self, n=24, seed=0):
        return ImplicitColoring(n, eps=0.4, constants=SMALL, seed=seed)

    def test_proper_after_inserts(self):
        ic = self.make()
        n, edges = gen.erdos_renyi(24, 60, seed=3)
        ic.insert_batch(edges)
        ic.check_proper(edges)

    def test_query_subset_consistent_with_full(self):
        ic = self.make()
        n, edges = gen.grid(4, 5)
        ic.insert_batch(edges)
        sub = ic.query([0, 1, 2])
        full = ic.query(list(range(20)))
        assert all(sub[v] == full[v] for v in sub)

    def test_proper_after_deletions(self):
        ic = self.make()
        n, edges = gen.erdos_renyi(24, 60, seed=4)
        ic.insert_batch(edges)
        ic.delete_batch(edges[:30])
        ic.check_proper(edges[30:])

    def test_empty_query(self):
        ic = self.make()
        assert ic.query([]) == {}

    def test_palette_bound_reported(self):
        ic = self.make()
        ic.insert_batch([(0, 1)])
        assert ic.palette_bound() >= 9.0

    def test_colors_within_reasonable_palette(self):
        ic = self.make()
        n, edges = gen.cycle(12)
        ic.insert_batch(edges)
        colors = ic.query(list(range(12)))
        # cycle: rho ~ 1, two pseudoforests, Linial lands in a small palette
        assert max(colors.values()) < 10_000
