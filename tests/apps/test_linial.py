"""Tests for Linial's polynomial palette reduction."""

import random

import pytest

from repro.apps import linial_parameters, linial_step, reduce_coloring
from repro.errors import ParameterError


def random_oriented_graph(n, d, seed):
    """Random orientation with out-degree <= d."""
    rng = random.Random(seed)
    out = {}
    for v in range(n):
        k = rng.randint(0, d)
        choices = [w for w in range(n) if w != v]
        out[v] = rng.sample(choices, min(k, len(choices)))
    return out


def greedy_proper_coloring(out, k):
    """A proper coloring w.r.t. the symmetric closure, < k colors."""
    adj = {v: set() for v in out}
    for v, ws in out.items():
        for w in ws:
            adj[v].add(w)
            adj[w].add(v)
    colors = {}
    for v in sorted(adj):
        used = {colors[w] for w in adj[v] if w in colors}
        colors[v] = next(c for c in range(k) if c not in used)
    return colors


def assert_proper(colors, out):
    for v, ws in out.items():
        for w in ws:
            assert colors[v] != colors[w], f"edge ({v},{w}) monochromatic"


class TestParameters:
    def test_field_large_enough(self):
        q, D = linial_parameters(k=1000, d=3)
        assert q ** (D + 1) >= 1000
        assert q > 3 * max(D, 1)

    def test_small_inputs(self):
        q, D = linial_parameters(k=2, d=0)
        assert q >= 2

    def test_invalid(self):
        with pytest.raises(ParameterError):
            linial_parameters(0, 1)


class TestStep:
    @pytest.mark.parametrize("seed", range(4))
    def test_reduces_and_stays_proper(self, seed):
        out = random_oriented_graph(40, 3, seed)
        k = 6 ** 4  # a big palette, like the combined CV colors
        colors = greedy_proper_coloring(out, 20)
        # embed into the large palette injectively-ish (still proper)
        colors = {v: c * 7 + (v % 7) for v, c in colors.items()}
        colors = {v: c % k for v, c in colors.items()}
        # ensure properness after embedding
        out_proper = all(
            colors[v] != colors[w] for v, ws in out.items() for w in ws
        )
        if not out_proper:
            colors = greedy_proper_coloring(out, 20)
        new, new_k = linial_step(colors, out, k, 3)
        assert_proper(new, out)
        assert max(new.values()) < new_k
        assert new_k < k

    def test_empty_graph(self):
        new, new_k = linial_step({}, {}, 10, 1)
        assert new == {}


class TestReduceColoring:
    def test_two_rounds_reach_poly_d(self):
        out = random_oriented_graph(60, 3, 5)
        base = greedy_proper_coloring(out, 30)
        k = 6 ** 5
        base = {v: c for v, c in base.items()}
        reduced, k_final = reduce_coloring(base, out, k, 3, rounds=2)
        assert_proper(reduced, out)
        assert k_final < k
        assert k_final <= 2000  # poly(d), far below 6^5 ~ 7776

    def test_stops_when_no_progress(self):
        out = {0: [1], 1: []}
        colors = {0: 0, 1: 1}
        reduced, k_final = reduce_coloring(colors, out, 2, 1, rounds=5)
        assert_proper(reduced, out)
        assert k_final <= 2 * 2 * 10  # never worse than a small constant
