"""Tests for batch-dynamic maximal matching (Corollary 1.3)."""

import pytest

from repro.apps import MaximalMatching
from repro.config import Constants
from repro.errors import CapacityError
from repro.graphs import generators as gen, streams


SMALL = Constants(sample_c=0.5, min_B=4, duplication_cap=8)


def make(rho_max=5, n=32, seed=0):
    return MaximalMatching(rho_max, n, eps=0.4, constants=SMALL, seed=seed)


class TestBasics:
    def test_single_edge_gets_matched(self):
        mm = make()
        mm.insert_batch([(0, 1)])
        assert mm.matching() == {(0, 1)}
        mm.check_matching()

    def test_triangle_matches_one_edge(self):
        mm = make()
        mm.insert_batch([(0, 1), (1, 2), (0, 2)])
        assert len(mm.matching()) == 1
        mm.check_matching()

    def test_path_matches_alternately(self):
        mm = make()
        n, edges = gen.path(10)
        mm.insert_batch(edges)
        mm.check_matching()
        assert len(mm.matching()) >= 3  # maximal matching of P10 is >= 3

    def test_deleting_matched_edge_rematches(self):
        mm = make()
        mm.insert_batch([(0, 1), (1, 2)])
        matched = next(iter(mm.matching()))
        mm.delete_batch([matched])
        mm.check_matching()
        assert len(mm.matching()) == 1  # the other edge takes over

    def test_deleting_unmatched_edge_keeps_matching(self):
        mm = make()
        mm.insert_batch([(0, 1), (1, 2), (2, 3)])
        mm.check_matching()
        before = mm.matching()
        unmatched = [e for e in [(0, 1), (1, 2), (2, 3)] if e not in before]
        if unmatched:
            mm.delete_batch([unmatched[0]])
            mm.check_matching()
            assert mm.matching() == before


class TestStreams:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_churn_keeps_maximality(self, seed):
        mm = make(rho_max=6, n=30, seed=seed)
        for op in streams.churn(30, steps=30, batch_size=6, seed=seed):
            if op.kind == "insert":
                mm.insert_batch(op.edges)
            else:
                mm.delete_batch(op.edges)
            mm.check_matching()

    def test_sliding_window(self):
        mm = make(rho_max=6, n=40)
        n, edges = gen.erdos_renyi(40, 80, seed=4)
        for op in streams.sliding_window(edges, window=3, batch_size=10):
            if op.kind == "insert":
                mm.insert_batch(op.edges)
            else:
                mm.delete_batch(op.edges)
            mm.check_matching()

    def test_insert_then_delete_everything(self):
        mm = make(rho_max=6, n=20)
        n, edges = gen.grid(4, 5)
        for op in streams.insert_then_delete(edges, 8, seed=5):
            if op.kind == "insert":
                mm.insert_batch(op.edges)
            else:
                mm.delete_batch(op.edges)
            mm.check_matching()
        assert mm.matching() == set()


class TestPromise:
    def test_density_promise_violation_detected(self):
        mm = make(rho_max=1, n=20)
        n, edges = gen.clique(12)  # rho = 5.5 >> 1
        with pytest.raises(CapacityError):
            mm.insert_batch(edges)
