"""Interleaving stress for maximal matching, plus D_incoming regressions.

The property test drives adversarial insert/delete interleavings that
deliberately target matched edges (the hardest rematch pattern) and runs
the full ``check_matching()`` oracle after every batch.  The regression
tests plant stale ``D_incoming`` entries by hand — the index can outlive
its edge when an exception or injected fault lands between the substrate
update and the re-index — and assert the proposal path never matches
over a dead edge or a matched partner.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps import MaximalMatching
from repro.config import Constants
from repro.graphs.graph import norm_edge

SMALL = Constants(sample_c=0.5, min_B=4, duplication_cap=8)


def make(rho_max=6, n=20, seed=0):
    return MaximalMatching(rho_max, n, eps=0.4, constants=SMALL, seed=seed)


@st.composite
def interleavings(draw):
    """Insert/delete schedules biased toward deleting matched edges."""
    n = draw(st.integers(6, 16))
    steps = draw(st.integers(2, 8))
    return n, steps, draw(st.randoms(use_true_random=False))


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(interleavings())
def test_matching_survives_adversarial_interleavings(plan):
    n, steps, rng = plan
    mm = make(n=n, seed=1)
    live: set = set()
    for _ in range(steps):
        matched = sorted(mm.matching() & live)
        if matched and rng.random() < 0.5:
            # aim squarely at the matching: delete matched edges, maybe
            # mixed with unmatched ones, in the same batch
            k = rng.randint(1, len(matched))
            victims = set(rng.sample(matched, k))
            spare = sorted(live - victims)
            if spare and rng.random() < 0.5:
                victims.update(rng.sample(spare, rng.randint(1, min(2, len(spare)))))
            mm.delete_batch(sorted(victims))
            live -= victims
        else:
            fresh = set()
            for _ in range(12):
                u, v = rng.randrange(n), rng.randrange(n)
                if u != v and norm_edge(u, v) not in live:
                    fresh.add(norm_edge(u, v))
                if len(fresh) >= 4:
                    break
            if not fresh:
                continue
            mm.insert_batch(sorted(fresh))
            live |= fresh
        mm.check_matching()
    assert mm.matching() <= live


class TestStaleIncomingIndex:
    """D_incoming is an index, not ground truth — proposals must re-check."""

    def test_planted_dead_edge_is_never_proposed(self):
        mm = make()
        mm.insert_batch([(0, 1)])
        # plant a stale in-neighbour over an edge that does not exist, as
        # a crashed batch (fault between substrate update and re-index)
        # would leave behind
        mm.d_incoming.setdefault(2, set()).add(3)
        assert 3 not in mm._candidates(2)
        mm._rematch({2})
        mm.check_matching()
        assert (2, 3) not in mm.matching()

    def test_planted_matched_partner_is_never_proposed(self):
        mm = make()
        mm.insert_batch([(0, 1), (2, 3)])
        assert mm.matching() == {(0, 1), (2, 3)}
        # stale availability claim: 0 listed as an unmatched in-neighbour
        # of 2 even though 0 is matched
        mm.d_incoming.setdefault(2, set()).add(0)
        assert 0 not in mm._candidates(2)

    def test_stale_entry_does_not_break_rematch_after_delete(self):
        mm = make()
        mm.insert_batch([(0, 1), (1, 2)])
        matched = next(iter(mm.matching()))
        free = ({0, 2} - set(matched)).pop()
        # dead-edge claim pointing at the soon-to-be-freed vertices
        mm.d_incoming.setdefault(free, set()).add(9)
        mm.d_incoming.setdefault(9, set()).add(free)
        mm.delete_batch([matched])
        mm.check_matching()
        # the surviving edge takes over; the phantom edge to 9 never matches
        assert len(mm.matching()) == 1
        assert all(9 not in e for e in mm.matching())


class TestDeletePurgesIncomingIndex:
    def test_deleted_edge_leaves_no_incoming_entry(self):
        mm = make()
        mm.insert_batch([(0, 1), (1, 2), (3, 4)])
        mm.delete_batch([(0, 1)])
        assert 1 not in mm.d_incoming.get(0, set())
        assert 0 not in mm.d_incoming.get(1, set())
        mm.check_matching()

    def test_every_incoming_entry_is_a_live_edge_through_churn(self):
        from repro.graphs import streams

        mm = make(n=18, seed=4)
        live: set = set()
        for op in streams.churn(18, steps=20, batch_size=5, seed=4):
            if op.kind == "insert":
                mm.insert_batch(op.edges)
                live |= set(op.edges)
            else:
                mm.delete_batch(op.edges)
                live -= set(op.edges)
            for head, tails in mm.d_incoming.items():
                for tail in tails:
                    assert norm_edge(tail, head) in live, (
                        f"stale D_incoming entry {tail}->{head}"
                    )
            mm.check_matching()
