"""Tests for the dynamic comparators: SW, BF, LDS, recompute baselines."""

import pytest

from repro.baselines import (
    BrodalFagerbergOrientation,
    LazyRebuildCoreness,
    LevelDataStructure,
    SawlaniWangOrientation,
    StaticRecompute,
    core_numbers,
)
from repro.errors import BatchError, ParameterError
from repro.graphs import DynamicGraph, generators as gen, streams
from repro.instrument import CostModel


class TestSawlaniWang:
    def test_stays_balanced_under_inserts(self):
        n, edges = gen.erdos_renyi(40, 120, seed=1)
        sw = SawlaniWangOrientation()
        sw.insert_batch(edges)
        sw.check_balanced()

    def test_stays_balanced_under_churn(self):
        sw = SawlaniWangOrientation()
        for op in streams.churn(25, steps=60, batch_size=4, seed=2):
            (sw.insert_batch if op.kind == "insert" else sw.delete_batch)(op.edges)
            sw.check_balanced()

    def test_max_outdegree_near_density(self):
        # a clique K7 has rho = 3; balanced orientation max outdeg <= ~rho + O(log n)
        n, edges = gen.clique(7)
        sw = SawlaniWangOrientation()
        sw.insert_batch(edges)
        assert sw.max_outdegree() <= 5

    def test_duplicate_insert_rejected(self):
        sw = SawlaniWangOrientation()
        sw.insert(0, 1)
        with pytest.raises(BatchError):
            sw.insert(1, 0)

    def test_delete_absent_rejected(self):
        with pytest.raises(BatchError):
            SawlaniWangOrientation().delete(0, 1)

    def test_orientation_of(self):
        sw = SawlaniWangOrientation()
        sw.insert(3, 4)
        tail, head = sw.orientation_of(3, 4)
        assert {tail, head} == {3, 4}

    def test_counts_flips(self):
        sw = SawlaniWangOrientation(cm=CostModel())
        n, edges = gen.clique(6)
        sw.insert_batch(edges)
        assert sw.cm.work > 0


class TestBrodalFagerberg:
    def test_cap_maintained(self):
        n, edges = gen.erdos_renyi(40, 100, seed=3)
        bf = BrodalFagerbergOrientation(cap=8)
        bf.insert_batch(edges)
        bf.check_cap()

    def test_deletion_does_nothing(self):
        bf = BrodalFagerbergOrientation(cap=4)
        bf.insert(0, 1)
        bf.delete(0, 1)
        assert bf.flips_last_update == 0
        assert not bf.has_edge(0, 1)

    def test_cascades_counted(self):
        # a star (arboricity 1) under cap 5: inserting every edge oriented
        # out of the center overflows it and forces flip-all cascades,
        # while cap >> 5 * arboricity keeps the BF analysis applicable.
        bf = BrodalFagerbergOrientation(cap=5)
        total = 0
        for leaf in range(1, 20):
            bf.insert(0, leaf)
            total += bf.flips_last_update
        bf.check_cap()
        assert total > 0

    def test_infeasible_cap_detected(self):
        # cap far below arboricity violates the [BF99] precondition; the
        # guard must fail loudly instead of spinning forever
        bf = BrodalFagerbergOrientation(cap=1)
        n, edges = gen.clique(5)
        with pytest.raises(RuntimeError):
            bf.insert_batch(edges)

    def test_bad_cap(self):
        with pytest.raises(ParameterError):
            BrodalFagerbergOrientation(cap=0)


class TestLevelDataStructure:
    def test_invariants_hold_after_churn(self):
        lds = LevelDataStructure(30, delta=0.5)
        for op in streams.churn(30, steps=40, batch_size=5, seed=4):
            (lds.insert_batch if op.kind == "insert" else lds.delete_batch)(op.edges)
        lds.check_invariants()

    def test_estimate_tracks_coreness_loosely(self):
        n, edges = gen.planted_dense(40, block=10, p_in=1.0, out_edges=20, seed=5)
        lds = LevelDataStructure(n, delta=0.5)
        lds.insert_batch(edges)
        g = DynamicGraph(n, edges)
        cores = core_numbers(g)
        dense_est = max(lds.estimate(v) for v in range(10))
        sparse_est = [lds.estimate(v) for v in range(20, 40) if cores.get(v, 0) <= 1]
        # the dense block (core 9) must be estimated well above the sea
        assert dense_est >= 4 * max(sparse_est, default=1.0)

    def test_duplicate_insert_rejected(self):
        lds = LevelDataStructure(4)
        lds.insert(0, 1)
        with pytest.raises(BatchError):
            lds.insert(0, 1)

    def test_delete_absent_rejected(self):
        with pytest.raises(BatchError):
            LevelDataStructure(4).delete(0, 1)

    def test_bad_delta(self):
        with pytest.raises(ParameterError):
            LevelDataStructure(4, delta=0.0)

    def test_moves_counted(self):
        lds = LevelDataStructure(20)
        n, edges = gen.clique(8)
        moves = lds.insert_batch(edges)
        assert moves > 0


class TestRecomputeBaselines:
    def test_static_always_exact(self):
        sr = StaticRecompute(cm=CostModel())
        g = DynamicGraph(0)
        for op in streams.churn(20, steps=20, batch_size=5, seed=6):
            if op.kind == "insert":
                sr.insert_batch(op.edges)
                g.insert_batch(op.edges)
            else:
                sr.delete_batch(op.edges)
                g.delete_batch(op.edges)
            exact = core_numbers(g)
            assert all(sr.estimate(v) == exact.get(v, 0) for v in range(g.n))

    def test_static_charges_graph_size_per_batch(self):
        cm = CostModel()
        sr = StaticRecompute(cm=cm)
        n, edges = gen.erdos_renyi(30, 60, seed=7)
        sr.insert_batch(edges[:30])
        w1 = cm.work
        sr.insert_batch(edges[30:31])  # tiny batch, full recompute anyway
        assert cm.work - w1 > 60  # ~n + 2m regardless of batch size

    def test_lazy_rebuild_is_bursty(self):
        cm = CostModel()
        lazy = LazyRebuildCoreness(tau=0.05, cm=cm)
        n, edges = gen.erdos_renyi(40, 200, seed=8)
        lazy.insert_batch(edges)  # forces a rebuild
        works = []
        for e in edges[:0]:
            pass
        # feed tiny deletes; most are cheap, occasionally a rebuild spikes
        for i, e in enumerate(list(edges)[:40]):
            before = cm.work
            lazy.delete_batch([e])
            works.append(cm.work - before)
        assert min(works) < max(works)  # bursty: spikes exist
        assert lazy.rebuilds >= 1

    def test_lazy_estimate_exact_right_after_rebuild(self):
        lazy = LazyRebuildCoreness(tau=10.0)
        n, edges = gen.clique(5)
        lazy.insert_batch(edges)  # first batch always rebuilds
        assert all(lazy.estimate(v) == 4 for v in range(5))
