"""Tests for exact arboricity via matroid partition."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    arboricity,
    can_partition_into_forests,
    nash_williams_brute,
)
from repro.errors import ParameterError
from repro.graphs import DynamicGraph, generators as gen


def check_forest_partition(g: DynamicGraph, forests):
    import networkx as nx

    covered = set()
    for forest_edges in forests:
        f = nx.Graph()
        f.add_edges_from(forest_edges)
        assert nx.is_forest(f)
        assert not (covered & forest_edges)
        covered |= forest_edges
    assert covered == g.edges


class TestKnownFamilies:
    def test_forest_has_arboricity_one(self):
        n, edges = gen.random_forest(20, trees=2, seed=1)
        assert arboricity(DynamicGraph(n, edges)) == 1

    def test_cycle(self):
        n, edges = gen.cycle(7)
        assert arboricity(DynamicGraph(n, edges)) == 2

    def test_clique(self):
        # arboricity(K_k) = ceil(k / 2)
        for k in (3, 4, 5, 6):
            n, edges = gen.clique(k)
            assert arboricity(DynamicGraph(n, edges)) == math.ceil(k / 2)

    def test_complete_bipartite(self):
        # NW: lambda(K_{a,b}) = ceil(ab / (a + b - 1))
        n, edges = gen.complete_bipartite(3, 4)
        assert arboricity(DynamicGraph(n, edges)) == math.ceil(12 / 6)

    def test_empty(self):
        assert arboricity(DynamicGraph(4)) == 0

    def test_grid(self):
        n, edges = gen.grid(4, 4)
        assert arboricity(DynamicGraph(n, edges)) == 2


class TestPartition:
    def test_partition_is_valid(self):
        n, edges = gen.clique(6)
        g = DynamicGraph(n, edges)
        forests = can_partition_into_forests(g, 3)
        assert forests is not None
        check_forest_partition(g, forests)

    def test_below_arboricity_impossible(self):
        n, edges = gen.clique(6)
        assert can_partition_into_forests(DynamicGraph(n, edges), 2) is None

    def test_k_zero(self):
        assert can_partition_into_forests(DynamicGraph(3), 0) == []
        n, edges = gen.path(3)
        assert can_partition_into_forests(DynamicGraph(n, edges), 0) is None

    def test_negative_k(self):
        with pytest.raises(ParameterError):
            can_partition_into_forests(DynamicGraph(2), -1)


class TestAgainstNashWilliams:
    @pytest.mark.parametrize("seed", range(5))
    def test_small_random(self, seed):
        n, edges = gen.erdos_renyi(9, 16, seed=seed)
        g = DynamicGraph(n, edges)
        assert arboricity(g) == nash_williams_brute(g)

    def test_brute_size_guard(self):
        n, edges = gen.erdos_renyi(20, 30, seed=1)
        with pytest.raises(ParameterError):
            nash_williams_brute(DynamicGraph(n, edges))


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000))
def test_hypothesis_matches_nash_williams(seed):
    n, edges = gen.erdos_renyi(8, 12, seed=seed)
    g = DynamicGraph(n, edges)
    if g.m:
        assert arboricity(g) == nash_williams_brute(g)
