"""Tests for exact (Goldberg) and greedy densest subgraph."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import densest_subgraph, exact_density, greedy_peeling_density
from repro.graphs import DynamicGraph, generators as gen


def brute_force_density(g: DynamicGraph) -> float:
    """Exponential oracle over touched vertices (tiny graphs only)."""
    from itertools import combinations

    touched = sorted(g.touched_vertices())
    best = 0.0
    for k in range(1, len(touched) + 1):
        for sub in combinations(touched, k):
            best = max(best, g.density_of(sub))
    return best


class TestKnownFamilies:
    def test_clique(self):
        n, edges = gen.clique(6)
        rho, s = densest_subgraph(DynamicGraph(n, edges))
        assert rho == pytest.approx(15 / 6)
        assert len(s) == 6

    def test_path(self):
        n, edges = gen.path(6)
        rho, _ = densest_subgraph(DynamicGraph(n, edges))
        assert rho == pytest.approx(5 / 6)

    def test_empty(self):
        rho, _ = densest_subgraph(DynamicGraph(4))
        assert rho == 0.0

    def test_clique_in_sparse_sea(self):
        n, edges = gen.planted_dense(40, block=8, p_in=1.0, out_edges=15, seed=1)
        rho, s = densest_subgraph(DynamicGraph(n, edges))
        assert rho >= 7 / 2  # the K8 block
        assert set(range(8)) <= s or rho > 7 / 2

    def test_complete_bipartite(self):
        n, edges = gen.complete_bipartite(3, 3)
        rho, _ = densest_subgraph(DynamicGraph(n, edges))
        assert rho == pytest.approx(9 / 6)


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(4))
    def test_small_random(self, seed):
        n, edges = gen.erdos_renyi(9, 14 + seed, seed=seed)
        g = DynamicGraph(n, edges)
        assert exact_density(g) == pytest.approx(brute_force_density(g), abs=1e-6)


class TestGreedy:
    def test_half_approximation(self):
        for seed in range(4):
            n, edges = gen.erdos_renyi(30, 90, seed=seed)
            g = DynamicGraph(n, edges)
            rho = exact_density(g)
            greedy, s = greedy_peeling_density(g)
            assert greedy >= rho / 2 - 1e-9
            assert greedy <= rho + 1e-9
            assert g.density_of(s) == pytest.approx(greedy)

    def test_empty(self):
        assert greedy_peeling_density(DynamicGraph(3))[0] == 0.0

    def test_clique_exact(self):
        n, edges = gen.clique(7)
        greedy, _ = greedy_peeling_density(DynamicGraph(n, edges))
        assert greedy == pytest.approx(21 / 7)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_hypothesis_exact_at_least_greedy(seed):
    n, edges = gen.erdos_renyi(12, 20, seed=seed)
    g = DynamicGraph(n, edges)
    rho, s = densest_subgraph(g)
    greedy, _ = greedy_peeling_density(g)
    assert rho >= greedy - 1e-9
    if s:
        assert g.density_of(s) == pytest.approx(rho)
