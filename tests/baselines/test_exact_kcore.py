"""Tests for exact coreness oracles (vs. known families and networkx)."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import core_numbers, degeneracy, parallel_core_numbers
from repro.graphs import DynamicGraph, generators as gen
from repro.instrument import CostModel


class TestKnownFamilies:
    def test_clique(self):
        n, edges = gen.clique(6)
        cores = core_numbers(DynamicGraph(n, edges))
        assert all(cores[v] == 5 for v in range(6))

    def test_path(self):
        n, edges = gen.path(10)
        cores = core_numbers(DynamicGraph(n, edges))
        assert all(cores[v] == 1 for v in range(10))

    def test_cycle(self):
        n, edges = gen.cycle(8)
        cores = core_numbers(DynamicGraph(n, edges))
        assert all(cores[v] == 2 for v in range(8))

    def test_star(self):
        n, edges = gen.star(7)
        cores = core_numbers(DynamicGraph(n, edges))
        assert all(c == 1 for c in cores.values())

    def test_grid(self):
        n, edges = gen.grid(5, 5)
        assert degeneracy(DynamicGraph(n, edges)) == 2

    def test_clique_plus_pendant(self):
        n, edges = gen.clique(5)
        edges = edges + [(0, 5)]
        cores = core_numbers(DynamicGraph(6, edges))
        assert cores[5] == 1
        assert cores[0] == 4

    def test_empty_graph(self):
        assert core_numbers(DynamicGraph(3)) == {0: 0, 1: 0, 2: 0}
        assert degeneracy(DynamicGraph(0)) == 0


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_graphs(self, seed):
        n, edges = gen.erdos_renyi(60, 150 + 20 * seed, seed=seed)
        g = DynamicGraph(n, edges)
        ours = core_numbers(g)
        theirs = nx.core_number(g.to_networkx())
        assert all(ours[v] == theirs[v] for v in range(n))

    def test_barabasi_albert(self):
        n, edges = gen.barabasi_albert(80, 3, seed=1)
        g = DynamicGraph(n, edges)
        assert core_numbers(g) == dict(nx.core_number(g.to_networkx()))


class TestParallelPeeling:
    def test_matches_sequential(self):
        n, edges = gen.erdos_renyi(50, 120, seed=2)
        g = DynamicGraph(n, edges)
        par, _rounds = parallel_core_numbers(g)
        assert par == core_numbers(g)

    def test_path_needs_one_round_per_layer_pair(self):
        n, edges = gen.path(40)
        g = DynamicGraph(n, edges)
        _cores, rounds = parallel_core_numbers(g)
        # peeling a path strips both endpoints per round: ~n/2 rounds —
        # the depth bottleneck batch-dynamic algorithms avoid
        assert rounds >= n // 2 - 2

    def test_charges_work(self):
        cm = CostModel()
        n, edges = gen.clique(8)
        parallel_core_numbers(DynamicGraph(n, edges), cm)
        assert cm.work > 0
        assert cm.depth > 0


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000))
def test_hypothesis_random_graph_matches_networkx(seed):
    n, edges = gen.erdos_renyi(25, 60, seed=seed)
    g = DynamicGraph(n, edges)
    ours = core_numbers(g)
    theirs = nx.core_number(g.to_networkx())
    assert all(ours[v] == theirs[v] for v in range(n))
