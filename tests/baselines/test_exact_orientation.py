"""Tests for the flow-based exact min-max-out-degree orientation."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import exact_density
from repro.baselines.exact_orientation import (
    min_max_outdegree,
    orient_with_cap,
    verify_orientation,
)
from repro.errors import ParameterError
from repro.graphs import DynamicGraph, generators as gen


class TestKnownFamilies:
    def test_cycle_is_one(self):
        n, edges = gen.cycle(9)
        g = DynamicGraph(n, edges)
        d, orientation = min_max_outdegree(g)
        assert d == 1
        verify_orientation(g, orientation, 1)

    def test_forest_is_one(self):
        n, edges = gen.random_forest(25, trees=2, seed=1)
        g = DynamicGraph(n, edges)
        d, orientation = min_max_outdegree(g)
        assert d == 1
        verify_orientation(g, orientation, 1)

    def test_clique(self):
        # K_n: d* = ceil(m / n) = ceil((n-1)/2)
        for k in (4, 5, 7):
            n, edges = gen.clique(k)
            g = DynamicGraph(n, edges)
            d, orientation = min_max_outdegree(g)
            assert d == math.ceil((k - 1) / 2)
            verify_orientation(g, orientation, d)

    def test_empty(self):
        assert min_max_outdegree(DynamicGraph(5)) == (0, {})

    def test_grid(self):
        n, edges = gen.grid(4, 4)
        g = DynamicGraph(n, edges)
        d, orientation = min_max_outdegree(g)
        assert d == 2
        verify_orientation(g, orientation, d)


class TestCapFeasibility:
    def test_cap_below_optimum_infeasible(self):
        n, edges = gen.clique(7)  # d* = 3
        g = DynamicGraph(n, edges)
        assert orient_with_cap(g, 2) is None
        assert orient_with_cap(g, 3) is not None

    def test_cap_zero(self):
        g = DynamicGraph(3, [(0, 1)])
        assert orient_with_cap(g, 0) is None

    def test_negative_cap_rejected(self):
        with pytest.raises(ParameterError):
            orient_with_cap(DynamicGraph(2), -1)


class TestHakimiSandwich:
    @pytest.mark.parametrize("seed", range(4))
    def test_dstar_sandwiches_density(self, seed):
        n, edges = gen.erdos_renyi(18, 40 + 5 * seed, seed=seed)
        g = DynamicGraph(n, edges)
        d, orientation = min_max_outdegree(g)
        rho = exact_density(g)
        assert rho <= d <= rho + 1 + 1e-9  # d* = ceil(max |E[S]|/|S|)
        verify_orientation(g, orientation, d)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000))
def test_hypothesis_witness_always_valid(seed):
    n, edges = gen.erdos_renyi(12, 24, seed=seed)
    g = DynamicGraph(n, edges)
    d, orientation = min_max_outdegree(g)
    verify_orientation(g, orientation, d)
    if g.m:
        assert orient_with_cap(g, d - 1) is None or d == 1
