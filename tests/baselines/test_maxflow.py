"""Tests for the Dinic max-flow substrate."""

import pytest

from repro.baselines import Dinic


class TestBasics:
    def test_single_edge(self):
        d = Dinic(2)
        d.add_edge(0, 1, 5.0)
        assert d.max_flow(0, 1) == 5.0

    def test_series_bottleneck(self):
        d = Dinic(3)
        d.add_edge(0, 1, 5.0)
        d.add_edge(1, 2, 3.0)
        assert d.max_flow(0, 2) == 3.0

    def test_parallel_paths(self):
        d = Dinic(4)
        d.add_edge(0, 1, 2.0)
        d.add_edge(1, 3, 2.0)
        d.add_edge(0, 2, 3.0)
        d.add_edge(2, 3, 3.0)
        assert d.max_flow(0, 3) == 5.0

    def test_disconnected(self):
        d = Dinic(4)
        d.add_edge(0, 1, 1.0)
        d.add_edge(2, 3, 1.0)
        assert d.max_flow(0, 3) == 0.0

    def test_negative_capacity_rejected(self):
        d = Dinic(2)
        with pytest.raises(ValueError):
            d.add_edge(0, 1, -1.0)


class TestClassicNetwork:
    def test_clrs_example(self):
        # CLRS figure 26.1-style network, max flow 23
        d = Dinic(6)
        s, v1, v2, v3, v4, t = range(6)
        d.add_edge(s, v1, 16)
        d.add_edge(s, v2, 13)
        d.add_edge(v1, v3, 12)
        d.add_edge(v2, v1, 4)
        d.add_edge(v2, v4, 14)
        d.add_edge(v3, v2, 9)
        d.add_edge(v3, t, 20)
        d.add_edge(v4, v3, 7)
        d.add_edge(v4, t, 4)
        assert d.max_flow(s, t) == 23

    def test_min_cut_side(self):
        d = Dinic(4)
        d.add_edge(0, 1, 1.0)
        d.add_edge(1, 2, 10.0)
        d.add_edge(2, 3, 10.0)
        d.max_flow(0, 3)
        side = d.min_cut_side(0)
        assert side == {0}  # the unit edge is the cut


class TestAgainstNetworkx:
    def test_random_networks(self):
        import random

        import networkx as nx

        rng = random.Random(11)
        for trial in range(5):
            n = 8
            g = nx.DiGraph()
            d = Dinic(n)
            for _ in range(20):
                u, v = rng.randrange(n), rng.randrange(n)
                if u != v:
                    cap = rng.randint(1, 10)
                    d.add_edge(u, v, float(cap))
                    if g.has_edge(u, v):
                        g[u][v]["capacity"] += cap
                    else:
                        g.add_edge(u, v, capacity=cap)
            g.add_nodes_from(range(n))
            expected = nx.maximum_flow_value(g, 0, n - 1) if g.has_node(0) else 0
            assert abs(d.max_flow(0, n - 1) - expected) < 1e-6
