"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.graphs.graph import DynamicGraph


@pytest.fixture
def rng():
    return random.Random(0xC0FFEE)


def random_graph(n: int, m: int, seed: int = 0) -> DynamicGraph:
    from repro.graphs.generators import erdos_renyi

    n, edges = erdos_renyi(n, m, seed)
    return DynamicGraph(n, edges)


def apply_stream(structure, ops) -> None:
    """Drive any structure exposing insert_batch/delete_batch."""
    for op in ops:
        if op.kind == "insert":
            structure.insert_batch(op.edges)
        else:
            structure.delete_batch(op.edges)
