"""Theorem 4.1 deletion path: token-pushing with truncated ranks."""

import random

import pytest

from repro.core import BalancedOrientation
from repro.errors import BatchError
from repro.graphs import generators as gen


def build(H, edges):
    st = BalancedOrientation(H=H)
    st.insert_batch(edges)
    return st


class TestBasics:
    def test_delete_single(self):
        st = build(3, [(0, 1), (1, 2)])
        st.delete_batch([(0, 1)])
        st.check_invariants()
        assert st.num_arcs() == 1

    def test_delete_absent_rejected(self):
        st = build(3, [(0, 1)])
        with pytest.raises(BatchError):
            st.delete_batch([(1, 2)])

    def test_delete_duplicate_in_batch_rejected(self):
        st = build(3, [(0, 1)])
        with pytest.raises(BatchError):
            st.delete_batch([(0, 1), (1, 0)])

    def test_delete_everything(self):
        n, edges = gen.clique(8)
        st = build(4, edges)
        st.delete_batch(edges)
        st.check_invariants()
        assert st.num_arcs() == 0
        assert st.max_outdegree() == 0


class TestInvariantAfterDeletes:
    @pytest.mark.parametrize("H", [1, 2, 4, 8])
    def test_random_graph_batched_deletes(self, H):
        n, edges = gen.erdos_renyi(40, 160, seed=10 + H)
        st = build(H, edges)
        doomed = list(edges)
        random.Random(H).shuffle(doomed)
        for i in range(0, len(doomed), 19):
            st.delete_batch(doomed[i : i + 19])
            st.check_invariants()

    def test_delete_above_H_is_free(self):
        # a vertex saturated above H loses edges without any token game
        n, edges = gen.clique(10)
        st = build(2, edges)
        games_before = st.cm.counters.get("push_games", 0)
        hub = max(range(10), key=st.outdegree)
        assert st.outdegree(hub) > 2
        victims = [(hub, w) for w in st.out_neighbors(hub)[: st.outdegree(hub) - 2]]
        st.delete_batch(victims)
        st.check_invariants()

    def test_many_deletions_same_vertex(self):
        # all of one vertex's out-edges die in one batch: up to H tokens on
        # the same vertex, forcing multiple bundles (Definition 4.17)
        n, edges = gen.star(6)
        st = build(6, edges)
        hub = max(range(n), key=st.outdegree)
        victims = [(hub, w) for w in st.out_neighbors(hub)]
        if victims:
            st.delete_batch(victims)
            st.check_invariants()

    def test_single_edge_delete_batches(self):
        n, edges = gen.grid(5, 5)
        st = build(3, edges)
        for e in edges:
            st.delete_batch([e])
            st.check_invariants()
        assert st.num_arcs() == 0


class TestPushGameCounters:
    def test_push_phase_bound(self):
        H = 4
        n, edges = gen.erdos_renyi(35, 140, seed=12)
        st = build(H, edges)
        st.delete_batch(edges[:70])
        games = st.cm.counters.get("push_games", 0)
        phases = st.cm.counters.get("push_phases", 0)
        if games:
            assert phases <= games * (H + 1) ** 3

    def test_bundle_partition_count(self):
        # deleting k <= H edges out of one vertex needs <= k bundles
        n, edges = gen.clique(8)
        st = build(8, edges)
        hub = max(range(8), key=st.outdegree)
        outs = st.out_neighbors(hub)[:3]
        st.delete_batch([(hub, w) for w in outs])
        assert st.cm.counters.get("delete_bundles", 0) <= 3

    def test_journal_records_deletes(self):
        st = build(3, [(0, 1), (1, 2)])
        st.delete_batch([(1, 2)])
        assert len(st.last_deleted) == 1
        assert st.last_inserted == []


class TestLevelsReconciled:
    def test_levels_match_outsets_after_every_batch(self):
        n, edges = gen.barabasi_albert(50, 3, seed=13)
        st = build(4, edges)
        doomed = list(edges)
        random.Random(99).shuffle(doomed)
        for i in range(0, len(doomed), 31):
            st.delete_batch(doomed[i : i + 31])
            for v, outset in st.out.items():
                assert st.level.get(v, 0) == len(outset)

    def test_no_leftover_labels(self):
        n, edges = gen.erdos_renyi(30, 120, seed=14)
        st = build(3, edges)
        st.delete_batch(edges[:60])
        assert st.vertex_label == {}
