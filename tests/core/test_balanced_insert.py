"""Theorem 4.1 insertion path: token bundles and the dropping game."""

import pytest

from repro.core import BalancedOrientation
from repro.errors import BatchError, ParameterError
from repro.graphs import generators as gen, streams
from repro.instrument import CostModel


class TestBasics:
    def test_initialization_is_constant_work(self):
        cm = CostModel()
        BalancedOrientation(H=4, cm=cm)
        assert cm.work == 0  # lazy initialization (Lemma 4.5)

    def test_single_edge(self):
        st = BalancedOrientation(H=3)
        st.insert_batch([(0, 1)])
        st.check_invariants()
        assert st.num_arcs() == 1
        assert st.outdegree(0) + st.outdegree(1) == 1

    def test_invalid_height(self):
        with pytest.raises(ParameterError):
            BalancedOrientation(H=0)

    def test_duplicate_within_batch_rejected(self):
        st = BalancedOrientation(H=3)
        with pytest.raises(BatchError):
            st.insert_batch([(0, 1), (1, 0)])

    def test_reinsert_rejected(self):
        st = BalancedOrientation(H=3)
        st.insert_batch([(0, 1)])
        with pytest.raises(BatchError):
            st.insert_batch([(0, 1)])

    def test_self_loop_rejected(self):
        with pytest.raises(BatchError):
            BalancedOrientation(H=3).insert_batch([(2, 2)])


class TestInvariantAfterInserts:
    @pytest.mark.parametrize("H", [1, 2, 4, 8])
    def test_random_graph_batches(self, H):
        n, edges = gen.erdos_renyi(40, 160, seed=H)
        st = BalancedOrientation(H=H)
        for i in range(0, len(edges), 23):
            st.insert_batch(edges[i : i + 23])
            st.check_invariants()
        assert st.num_arcs() == 160

    def test_whole_clique_one_batch(self):
        n, edges = gen.clique(12)
        st = BalancedOrientation(H=6)
        st.insert_batch(edges)
        st.check_invariants()

    def test_star_one_batch(self):
        n, edges = gen.star(30)
        st = BalancedOrientation(H=3)
        st.insert_batch(edges)
        st.check_invariants()
        # a star is 1-degenerate: no vertex should be forced high
        assert st.max_outdegree() <= 3

    def test_single_edge_batches(self):
        n, edges = gen.cycle(15)
        st = BalancedOrientation(H=2)
        for e in edges:
            st.insert_batch([e])
            st.check_invariants()

    def test_low_H_dense_graph_saturates_gracefully(self):
        n, edges = gen.clique(10)
        st = BalancedOrientation(H=2)
        st.insert_batch(edges)
        st.check_invariants()  # free insertions beyond H keep consistency
        assert st.max_outdegree() > 2  # saturation is expected, not an error


class TestMaxOutdegreeQuality:
    def test_forest_stays_low(self):
        n, edges = gen.random_forest(60, trees=3, seed=1)
        st = BalancedOrientation(H=4)
        st.insert_batch(edges)
        # arboricity 1 graph: Lemma 3.2-style bound keeps out-degrees tiny
        assert st.max_outdegree() <= 4

    def test_grid_stays_low(self):
        n, edges = gen.grid(8, 8)
        st = BalancedOrientation(H=6)
        st.insert_batch(edges)
        assert st.max_outdegree() <= 5


class TestGameCounters:
    def test_phases_and_games_counted(self):
        st = BalancedOrientation(H=4)
        n, edges = gen.clique(9)
        st.insert_batch(edges)
        assert st.cm.counters.get("drop_games", 0) >= 1
        assert st.cm.counters.get("insert_bundle_rounds", 0) >= 1

    def test_phase_count_within_lemma_bound(self):
        # Lemma 4.8: O(H^3) phases per bundle; measure the max per game
        H = 4
        st = BalancedOrientation(H=H)
        n, edges = gen.erdos_renyi(30, 120, seed=3)
        st.insert_batch(edges)
        games = st.cm.counters.get("drop_games", 1)
        phases = st.cm.counters.get("drop_phases", 0)
        assert phases <= games * (H + 1) ** 3

    def test_journal_records_inserts(self):
        st = BalancedOrientation(H=3)
        st.insert_batch([(0, 1), (1, 2)])
        assert len(st.last_inserted) == 2
        assert st.last_deleted == []


class TestWorkDepthShape:
    def test_work_scales_with_batch_not_graph(self):
        st = BalancedOrientation(H=4)
        n, edges = gen.erdos_renyi(80, 400, seed=4)
        st.insert_batch(edges[:390])
        before = st.cm.snapshot()
        st.insert_batch(edges[390:])  # 10 edges into a 390-edge graph
        delta = st.cm.snapshot() - before
        # worst-case guarantee: small batch => small work, regardless of m
        assert delta.work < 0.3 * before.work

    def test_depth_grows_sublinearly_in_batch(self):
        n, edges = gen.erdos_renyi(60, 256, seed=5)
        half = len(edges) // 2
        st1 = BalancedOrientation(H=5)
        st1.insert_batch(edges[:half])
        d_half = st1.cm.depth
        st2 = BalancedOrientation(H=5)
        st2.insert_batch(edges)
        # doubling the batch should NOT double the depth (parallelism)
        assert st2.cm.depth < 1.7 * d_half
