"""Property-based tests: the structure vs. a ground-truth graph model.

Hypothesis drives random mixed batch schedules and, after every batch,
verifies the full invariant set (I1–I3 of DESIGN.md §5): H-balancedness,
index consistency, level reconciliation, and agreement of the maintained
edge set with the model graph.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import BalancedOrientation
from repro.graphs import DynamicGraph, streams
from repro.graphs.graph import norm_edge


@st.composite
def batch_schedules(draw):
    """A valid schedule of insert/delete batches over a small vertex set."""
    n = draw(st.integers(4, 16))
    steps = draw(st.integers(1, 8))
    live: set = set()
    schedule = []
    for _ in range(steps):
        do_insert = draw(st.booleans()) or not live
        if do_insert:
            size = draw(st.integers(1, 10))
            fresh = set()
            for _ in range(size * 3):
                u = draw(st.integers(0, n - 1))
                v = draw(st.integers(0, n - 1))
                if u != v:
                    e = norm_edge(u, v)
                    if e not in live and e not in fresh:
                        fresh.add(e)
                if len(fresh) >= size:
                    break
            if not fresh:
                continue
            live |= fresh
            schedule.append(("insert", tuple(sorted(fresh))))
        else:
            pool = sorted(live)
            k = draw(st.integers(1, len(pool)))
            idx = draw(st.permutations(range(len(pool))))
            victims = tuple(pool[i] for i in idx[:k])
            live -= set(victims)
            schedule.append(("delete", victims))
    return n, schedule


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(batch_schedules(), st.integers(1, 6))
def test_invariants_hold_through_any_schedule(schedule, H):
    n, ops = schedule
    struct = BalancedOrientation(H=H)
    model = DynamicGraph(n)
    for kind, edges in ops:
        if kind == "insert":
            struct.insert_batch(edges)
            model.insert_batch(edges)
        else:
            struct.delete_batch(edges)
            model.delete_batch(edges)
        struct.check_invariants()
        # the maintained undirected edge set equals the model's
        ours = {(a, b) for (a, b, _c) in struct.tail_of}
        assert ours == model.edges
        # recorded out-degrees sum to the edge count
        assert sum(struct.level.values()) == model.m


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 1_000_000), st.integers(1, 5))
def test_sawtooth_fuzz(seed, H):
    """Adversarial build/tear cycles parameterized by a fuzzed seed."""
    k = 4 + seed % 5
    ops = streams.sawtooth_clique(k, repeats=2, small_batch=1 + seed % 3)
    struct = BalancedOrientation(H=H)
    for op in ops:
        if op.kind == "insert":
            struct.insert_batch(op.edges)
        else:
            struct.delete_batch(op.edges)
    struct.check_invariants()
    assert struct.num_arcs() == 0
