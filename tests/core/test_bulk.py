"""Tests for static bulk construction of BALANCED(H)."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BalancedOrientation
from repro.core.bulk import from_graph, static_balanced_orientation
from repro.core.levels import levkey
from repro.errors import BatchError
from repro.graphs import generators as gen
from repro.instrument import wallclock


def assert_h_balanced(tail_of, deg, H):
    for (a, b), tail in tail_of.items():
        head = b if tail == a else a
        assert levkey(deg.get(tail, 0), H) <= levkey(deg.get(head, 0), H) + 1


class TestStaticOrientation:
    @pytest.mark.parametrize("H", [1, 3, 6])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_random_graphs_balanced(self, H, seed):
        n, edges = gen.erdos_renyi(50, 180, seed=seed)
        tail_of, deg = static_balanced_orientation(edges, H)
        assert set(tail_of) == set(edges)
        assert_h_balanced(tail_of, deg, H)
        assert sum(deg.values()) == len(edges)

    def test_clique(self):
        n, edges = gen.clique(10)
        tail_of, deg = static_balanced_orientation(edges, 4)
        assert_h_balanced(tail_of, deg, 4)
        # peeling seed keeps out-degrees near degeneracy
        assert max(deg.values()) <= 9

    def test_forest_stays_at_one(self):
        n, edges = gen.random_forest(40, trees=2, seed=2)
        tail_of, deg = static_balanced_orientation(edges, 5)
        assert max(deg.values()) <= 2

    def test_empty(self):
        assert static_balanced_orientation([], 3) == ({}, {})

    def test_duplicate_rejected(self):
        with pytest.raises(BatchError):
            static_balanced_orientation([(0, 1), (1, 0)], 3)


class TestFromGraph:
    def test_indexed_structure_valid(self):
        n, edges = gen.barabasi_albert(60, 3, seed=3)
        st = from_graph(edges, H=5)
        st.check_invariants()
        assert st.num_arcs() == len(edges)

    def test_continues_dynamically(self):
        n, edges = gen.grid(6, 6)
        st = from_graph(edges, H=4)
        st.insert_batch([(100, 101)])
        st.delete_batch([edges[0]])
        st.check_invariants()

    def test_equivalent_to_incremental(self):
        """Same undirected edge set; both ways satisfy the same invariant."""
        n, edges = gen.erdos_renyi(30, 90, seed=4)
        bulk = from_graph(edges, H=4)
        incremental = BalancedOrientation(H=4)
        incremental.insert_batch(edges)
        bulk_edges = {(a, b) for (a, b, _c) in bulk.tail_of}
        inc_edges = {(a, b) for (a, b, _c) in incremental.tail_of}
        assert bulk_edges == inc_edges

    def test_bulk_is_faster_on_dense_input(self):
        n, edges = gen.erdos_renyi(80, 500, seed=5)
        t0 = wallclock.monotonic()
        from_graph(edges, H=5)
        bulk_time = wallclock.monotonic() - t0
        t0 = wallclock.monotonic()
        st = BalancedOrientation(H=5)
        st.insert_batch(edges)
        incremental_time = wallclock.monotonic() - t0
        assert bulk_time < incremental_time


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 100_000), st.integers(1, 8))
def test_hypothesis_static_always_balanced(seed, H):
    n, edges = gen.erdos_renyi(20, 50, seed=seed)
    tail_of, deg = static_balanced_orientation(edges, H)
    assert_h_balanced(tail_of, deg, H)
