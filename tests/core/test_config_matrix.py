"""Cross-configuration invariant matrix for BALANCED(H).

A broad parametrized sweep — family x height x batch size — each cell
replaying an insert+delete lifecycle with full invariant checks.  These
are the cheap, wide nets that catch interactions the targeted tests miss.
"""

import pytest

from repro.core import BalancedOrientation
from repro.graphs import generators as gen, streams


FAMILIES = {
    "er": lambda: gen.erdos_renyi(30, 90, seed=40),
    "ba": lambda: gen.barabasi_albert(30, 2, seed=41),
    "grid": lambda: gen.grid(5, 6),
    "clique": lambda: gen.clique(9),
    "bipartite": lambda: gen.complete_bipartite(5, 6),
    "forest": lambda: gen.random_forest(30, trees=3, seed=42),
    "star": lambda: gen.star(25),
    "planted": lambda: gen.planted_dense(30, block=8, p_in=1.0, out_edges=20, seed=43),
}


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("H", [1, 3, 7])
@pytest.mark.parametrize("batch", [3, 17])
def test_lifecycle_invariants(family, H, batch):
    _, edges = FAMILIES[family]()
    st = BalancedOrientation(H=H)
    for op in streams.insert_then_delete(edges, batch, seed=H * 100 + batch):
        if op.kind == "insert":
            st.insert_batch(op.edges)
        else:
            st.delete_batch(op.edges)
        st.check_invariants()
    assert st.num_arcs() == 0
    assert st.max_outdegree() == 0


@pytest.mark.parametrize("H", [2, 5])
def test_interleaved_reinsertion(H):
    """Edges deleted and immediately reinserted across several cycles."""
    _, edges = gen.erdos_renyi(20, 60, seed=44)
    st = BalancedOrientation(H=H)
    st.insert_batch(edges)
    for cycle in range(3):
        chunk = edges[cycle * 15 : cycle * 15 + 15]
        st.delete_batch(chunk)
        st.check_invariants()
        st.insert_batch(chunk)
        st.check_invariants()
    assert st.num_arcs() == len(edges)


@pytest.mark.parametrize("H", [1, 4])
def test_mixed_within_stream(H):
    """Alternating insert/delete batches that overlap the same region."""
    st = BalancedOrientation(H=H)
    for op in streams.churn(22, steps=36, batch_size=7, insert_bias=0.5, seed=45):
        if op.kind == "insert":
            st.insert_batch(op.edges)
        else:
            st.delete_batch(op.edges)
        st.check_invariants()
