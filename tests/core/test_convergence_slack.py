"""The ConvergenceError bound is governed by named Constants fields.

The round bounds of the token games are ``phase_safety * (H+1)^3 +
convergence_slack`` (and ``bundle_safety * (H+1)^2 + convergence_slack``
for bundle extraction).  Zeroing every named factor makes any non-trivial
game overshoot immediately — the deterministic way to exercise the
ConvergenceError path that the chaos harness and these tests rely on.
"""

import pytest

from repro.config import DEFAULT_CONSTANTS, Constants
from repro.core.balanced import BalancedOrientation
from repro.errors import ConvergenceError

EDGES = [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (0, 3)]


def test_default_slack_is_named_and_positive():
    assert DEFAULT_CONSTANTS.convergence_slack >= 1


def test_default_constants_converge():
    st = BalancedOrientation(2)
    st.insert_batch(EDGES)
    st.check_invariants()


def test_zeroed_bounds_raise_convergence_error():
    tight = Constants(phase_safety=0, bundle_safety=0, convergence_slack=0)
    st = BalancedOrientation(2, constants=tight)
    with pytest.raises(ConvergenceError):
        st.insert_batch(EDGES)


def test_slack_alone_can_rescue_tiny_games():
    """With safety factors zeroed, the additive slack is the entire budget."""
    generous = Constants(phase_safety=0, bundle_safety=0, convergence_slack=1000)
    st = BalancedOrientation(2, constants=generous)
    st.insert_batch(EDGES)
    st.check_invariants()
