"""Tests for the fixed-height coreness estimator (Theorem 5.1)."""

import pytest

from repro.baselines import core_numbers
from repro.config import Constants
from repro.core import FixedHCorenessEstimator
from repro.graphs import DynamicGraph, generators as gen


SMALL = Constants(sample_c=0.5, min_B=4, duplication_cap=8)


class TestRegimeSelection:
    def test_small_h_uses_duplication(self):
        est = FixedHCorenessEstimator(H=2, eps=0.4, n=64, constants=SMALL)
        assert est.regime == "duplication"
        assert est.K >= 1

    def test_large_h_uses_sampling(self):
        est = FixedHCorenessEstimator(H=1000, eps=0.4, n=64, constants=SMALL)
        assert est.regime == "sampling"
        assert est.sampler.p == pytest.approx(est.B / 1000)


class TestDuplicationRegime:
    def test_estimate_tracks_coreness(self):
        n, edges = gen.clique(8)  # core = 7 everywhere
        H = 8
        est = FixedHCorenessEstimator(H=H, eps=0.4, n=32, constants=SMALL)
        est.insert_batch(edges)
        est.check_invariants()
        for v in range(8):
            f = est.estimate(v)
            # Theorem 5.1 band with generous slack at laptop constants
            assert f >= 0.25 * 7 - 0.5 * H - 1
            assert f <= 3 * 7 + 0.5 * H + 1

    def test_sparse_graph_estimates_low(self):
        n, edges = gen.path(20)  # core = 1
        est = FixedHCorenessEstimator(H=4, eps=0.4, n=32, constants=SMALL)
        est.insert_batch(edges)
        assert max(est.estimate(v) for v in range(n)) <= 3

    def test_deletion_lowers_estimate(self):
        n, edges = gen.clique(8)
        est = FixedHCorenessEstimator(H=6, eps=0.4, n=32, constants=SMALL)
        est.insert_batch(edges)
        hi = max(est.estimate(v) for v in range(8))
        est.delete_batch(edges[: len(edges) * 3 // 4])
        est.check_invariants()
        lo = max(est.estimate(v) for v in range(8))
        assert lo < hi


class TestSamplingRegime:
    def test_sampled_structure_holds_subset(self):
        n, edges = gen.erdos_renyi(50, 200, seed=1)
        est = FixedHCorenessEstimator(H=500, eps=0.4, n=50, constants=SMALL, seed=2)
        est.insert_batch(edges)
        est.check_invariants()
        assert est.bal.num_arcs() <= len(edges)
        est.delete_batch(edges)
        assert est.bal.num_arcs() == 0

    def test_saturation_flags_high_core(self):
        # H far below the real coreness: estimate must NOT be saturated for
        # a sparse graph, and the estimate stays small
        n, edges = gen.path(30)
        est = FixedHCorenessEstimator(H=100, eps=0.4, n=30, constants=SMALL)
        est.insert_batch(edges)
        assert not any(est.saturated(v) for v in range(n))


class TestSandwich:
    """The two-sided Theorem 5.1 statement on a planted instance."""

    def test_planted_block(self):
        n, edges = gen.planted_dense(50, block=12, p_in=1.0, out_edges=25, seed=3)
        g = DynamicGraph(n, edges)
        cores = core_numbers(g)
        H = 12
        est = FixedHCorenessEstimator(H=H, eps=0.4, n=n, constants=SMALL)
        est.insert_batch(edges)
        block_est = [est.estimate(v) for v in range(12)]
        sea = [est.estimate(v) for v in range(12, n) if cores.get(v, 0) <= 1]
        # block (core 11) must estimate clearly above the sparse sea
        assert min(block_est) > 2 * max(sea, default=0.5)
