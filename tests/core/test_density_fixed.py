"""Tests for the fixed-height density guard (Theorem 5.2)."""

import pytest

from repro.baselines import exact_density
from repro.config import Constants
from repro.core import FixedHDensityGuard
from repro.graphs import DynamicGraph, generators as gen


SMALL = Constants(sample_c=0.5, min_B=4, duplication_cap=8)


class TestRegimeSelection:
    def test_low_h_duplicates(self):
        g = FixedHDensityGuard(H=2, eps=0.4, n=64, constants=SMALL)
        assert g.regime == "duplication"

    def test_high_h_buckets(self):
        g = FixedHDensityGuard(H=200, eps=0.4, n=64, constants=SMALL)
        assert g.regime == "buckets"
        assert g.T >= 2


class TestVerdicts:
    def test_sparse_graph_low_verdict(self):
        n, edges = gen.path(30)  # rho < 1
        g = FixedHDensityGuard(H=4, eps=0.4, n=n, constants=SMALL)
        g.insert_batch(edges)
        assert g.verdict() == "low"
        g.check_invariants()

    def test_dense_graph_high_verdict_at_low_hint(self):
        n, edges = gen.clique(14)  # rho = 6.5
        g = FixedHDensityGuard(H=1, eps=0.4, n=n, constants=SMALL)
        g.insert_batch(edges)
        assert g.verdict() == "high"

    def test_verdict_flips_with_deletions(self):
        n, edges = gen.clique(12)
        g = FixedHDensityGuard(H=2, eps=0.4, n=n, constants=SMALL)
        g.insert_batch(edges)
        assert g.verdict() == "high"
        g.delete_batch(edges[: len(edges) - 6])
        g.check_invariants()
        assert g.verdict() == "low"

    def test_bucket_regime_verdicts(self):
        # large hint, sparse graph -> low
        n, edges = gen.grid(6, 6)
        g = FixedHDensityGuard(H=200, eps=0.4, n=n, constants=SMALL)
        g.insert_batch(edges)
        assert g.verdict() == "low"


class TestExportedOrientation:
    def test_out_degree_bounded_when_low(self):
        n, edges = gen.erdos_renyi(30, 90, seed=1)
        rho = exact_density(DynamicGraph(n, edges))
        H = max(1, int(rho) + 2)
        g = FixedHDensityGuard(H=H, eps=0.4, n=n, constants=SMALL)
        g.insert_batch(edges)
        if g.verdict() == "low":
            assert g.max_out_export() <= g.out_degree_bound() + 1

    def test_orientation_covers_all_edges(self):
        n, edges = gen.cycle(12)
        g = FixedHDensityGuard(H=3, eps=0.4, n=n, constants=SMALL)
        g.insert_batch(edges)
        for u, v in edges:
            tail, head = g.orientation_of(u, v)
            assert {tail, head} == {u, v}

    def test_changed_edges_tracked(self):
        g = FixedHDensityGuard(H=3, eps=0.4, n=16, constants=SMALL)
        g.insert_batch([(0, 1), (1, 2)])
        assert {(0, 1), (1, 2)} <= g.changed_edges
        g.delete_batch([(0, 1)])
        assert (0, 1) in g.changed_edges


class TestBucketRouting:
    def test_same_edge_same_bucket(self):
        g = FixedHDensityGuard(H=300, eps=0.4, n=64, constants=SMALL)
        assert g._bucket_of(3, 7) == g._bucket_of(7, 3)

    def test_deletion_finds_its_bucket(self):
        n, edges = gen.erdos_renyi(40, 120, seed=2)
        g = FixedHDensityGuard(H=300, eps=0.4, n=n, constants=SMALL)
        g.insert_batch(edges)
        g.delete_batch(edges)  # would raise if routed to a wrong bucket
        assert all(b.num_arcs() == 0 for b in g._buckets.values())

    def test_buckets_lazy(self):
        g = FixedHDensityGuard(H=300, eps=0.4, n=64, constants=SMALL)
        assert g._buckets == {}
