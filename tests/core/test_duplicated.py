"""Tests for BALANCED(H, K) — duplication (Corollary 5.4 / Lemma 5.3)."""

import pytest

from repro.baselines import core_numbers
from repro.core import DuplicatedBalanced
from repro.errors import ParameterError
from repro.graphs import DynamicGraph, generators as gen


class TestBasics:
    def test_k_copies_inserted(self):
        d = DuplicatedBalanced(inner_H=6, K=3)
        d.insert_batch([(0, 1), (1, 2)])
        assert d.inner.num_arcs() == 6
        d.check_invariants()

    def test_delete_removes_all_copies(self):
        d = DuplicatedBalanced(inner_H=6, K=3)
        d.insert_batch([(0, 1), (1, 2)])
        d.delete_batch([(0, 1)])
        assert d.inner.num_arcs() == 3
        d.check_invariants()

    def test_invalid_k(self):
        with pytest.raises(ParameterError):
            DuplicatedBalanced(inner_H=4, K=0)

    def test_k_above_cap_rejected(self):
        with pytest.raises(ParameterError):
            DuplicatedBalanced(inner_H=4, K=1000)

    def test_fractional_outdegree(self):
        d = DuplicatedBalanced(inner_H=9, K=3)
        d.insert_batch([(0, 1), (0, 2), (0, 3)])
        total = sum(d.fractional_outdegree(v) for v in range(4))
        assert total == pytest.approx(3.0)


class TestLemma53:
    """Duplication multiplies coreness by exactly K."""

    @pytest.mark.parametrize("K", [2, 3])
    def test_duplicated_coreness_scales(self, K):
        n, edges = gen.clique(5)
        g = DynamicGraph(n, edges)
        base = core_numbers(g)
        # model the duplicated multigraph as K parallel simple-graph layers
        # hanging off the same vertices is NOT the same thing; instead use
        # the degree argument directly: mindeg of G[S] scales by K, so the
        # exact statement checked is core(G', v) == K * core(G, v) via the
        # peeling definition on a multigraph emulation.
        from repro.baselines.exact_kcore import core_numbers as cn

        class MultiView:
            n = g.n

            @staticmethod
            def degree(v):
                return K * g.degree(v)

            @staticmethod
            def neighbors(v):
                out = []
                for w in g.neighbors(v):
                    out.extend([w] * K)
                return out

        cores = cn(MultiView)
        assert all(cores[v] == K * base[v] for v in range(n))


class TestMajorityOrientation:
    def test_majority_is_a_valid_orientation(self):
        n, edges = gen.erdos_renyi(20, 60, seed=1)
        d = DuplicatedBalanced(inner_H=12, K=3)
        d.insert_batch(edges)
        for u, v in edges:
            tail, head = d.majority_orientation(u, v)
            assert {tail, head} == {u, v}

    def test_majority_out_neighbors_cover_edges_exactly_once(self):
        # regression: with even K, exact ties used to be claimed by BOTH
        # endpoints, double-covering edges; the deterministic tie-break
        # (toward the smaller endpoint) makes the cover exact
        n, edges = gen.grid(4, 4)
        d = DuplicatedBalanced(inner_H=8, K=2)
        d.insert_batch(edges)
        covered = []
        for v in range(n):
            for w in d.majority_out_neighbors(v):
                covered.append(tuple(sorted((v, w))))
        assert sorted(covered) == sorted(edges)

    def test_majority_consistency_with_orientation(self):
        n, edges = gen.erdos_renyi(15, 40, seed=9)
        for K in (2, 3):
            d = DuplicatedBalanced(inner_H=10, K=K)
            d.insert_batch(edges)
            for u, v in edges:
                tail, head = d.majority_orientation(u, v)
                assert head in d.majority_out_neighbors(tail)
                assert tail not in d.majority_out_neighbors(head)

    def test_majority_unique_with_odd_k(self):
        n, edges = gen.cycle(8)
        d = DuplicatedBalanced(inner_H=6, K=3)
        d.insert_batch(edges)
        count = sum(len(d.majority_out_neighbors(v)) for v in range(n))
        assert count == len(edges)  # odd K: exactly one direction wins

    def test_majority_outdegree_about_double_fractional(self):
        n, edges = gen.clique(7)
        d = DuplicatedBalanced(inner_H=14, K=3)
        d.insert_batch(edges)
        for v in range(n):
            assert len(d.majority_out_neighbors(v)) <= 2 * d.fractional_outdegree(v) + 1


class TestInterleaved:
    def test_mixed_updates_keep_invariants(self):
        import random

        n, edges = gen.erdos_renyi(15, 40, seed=2)
        d = DuplicatedBalanced(inner_H=10, K=2)
        rng = random.Random(3)
        live = []
        pending = list(edges)
        for step in range(8):
            if pending and (rng.random() < 0.7 or not live):
                take = pending[:5]
                pending = pending[5:]
                d.insert_batch(take)
                live.extend(take)
            else:
                rng.shuffle(live)
                kill = live[:3]
                live = live[3:]
                d.delete_batch(kill)
            d.check_invariants()
