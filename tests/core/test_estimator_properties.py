"""Property-based tests of the estimator layer against exact oracles."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import core_numbers, exact_density, greedy_peeling_density
from repro.config import Constants
from repro.core import (
    CorenessMonitor,
    DensityEstimator,
    FixedHCorenessEstimator,
    FixedHDensityGuard,
)
from repro.graphs import DynamicGraph, generators as gen


SMALL = Constants(sample_c=0.5, min_B=4, duplication_cap=8)


@st.composite
def small_graphs(draw):
    seed = draw(st.integers(0, 10_000))
    n = draw(st.integers(8, 24))
    m = draw(st.integers(4, min(60, n * (n - 1) // 2)))
    return gen.erdos_renyi(n, m, seed=seed)


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(small_graphs(), st.integers(1, 10))
def test_fixed_h_saturation_dichotomy(graph, H):
    """Theorem 5.1's case split: saturated => core >= c*H, else two-sided."""
    n, edges = graph
    g = DynamicGraph(n, edges)
    exact = core_numbers(g)
    est = FixedHCorenessEstimator(H=H, eps=0.4, n=n, constants=SMALL, seed=1)
    est.insert_batch(edges)
    for v in g.touched_vertices():
        c = exact.get(v, 0)
        f = est.estimate(v)
        if est.saturated(v):
            # only a lower bound is promised; generous constant for scale
            assert c >= 0.1 * H - 2
        elif c >= 2:
            assert 0.1 * c - 0.6 * H <= f <= 4.0 * c + 0.6 * H + 2


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(small_graphs())
def test_density_guard_verdict_consistent_with_truth(graph):
    """Theorem 5.2: 'low' implies rho not huge; 'high' implies rho not tiny."""
    n, edges = graph
    g = DynamicGraph(n, edges)
    rho = greedy_peeling_density(g)[0]  # cheap 1/2-approx suffices as anchor
    for H in (1, 2, 4, 8):
        guard = FixedHDensityGuard(H=H, eps=0.4, n=n, constants=SMALL, seed=2)
        guard.insert_batch(edges)
        if guard.verdict() == "low":
            assert rho <= 2.5 * H + 2      # rho <= (1+eps)H with slack
        else:
            assert 2 * rho >= 0.3 * H - 1  # rho > (1-eps)H with slack


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(small_graphs())
def test_density_ladder_monotone_with_exact(graph):
    n, edges = graph
    g = DynamicGraph(n, edges)
    rho = exact_density(g)
    de = DensityEstimator(n, eps=0.4, constants=SMALL, seed=3)
    de.insert_batch(edges)
    est = de.density_estimate()
    assert 0.3 * rho - 0.5 <= est <= max(2.0, 3.0 * rho)


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(small_graphs(), st.data())
def test_monitor_estimates_survive_random_deletions(graph, data):
    n, edges = graph
    mon = CorenessMonitor(n, eps=0.4, constants=SMALL, seed=4)
    mon.insert_batch(edges)
    # delete a random subset in one batch, then re-validate the band
    k = data.draw(st.integers(0, len(edges)))
    idx = data.draw(st.permutations(range(len(edges))))
    doomed = [edges[i] for i in idx[:k]]
    if doomed:
        mon.delete_batch(doomed)
    exact = core_numbers(mon.graph)
    for v in mon.graph.touched_vertices():
        c = exact.get(v, 0)
        if c >= 2:
            assert 0.1 * c <= mon.estimate(v) <= 6.0 * c


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(small_graphs())
def test_orientation_export_covers_exactly_the_edges(graph):
    n, edges = graph
    de = DensityEstimator(n, eps=0.4, constants=SMALL, seed=5)
    de.insert_batch(edges)
    covered = set()
    vertices = {v for e in edges for v in e}
    for v in vertices:
        for w in de.orientation_out(v):
            e = tuple(sorted((v, w)))
            assert e not in covered, "edge claimed by both endpoints"
            covered.add(e)
    assert covered == set(edges)
