"""Tests for the unconditional ladders (Theorems 1.1 and 1.2)."""

import pytest

from repro.baselines import core_numbers, exact_density
from repro.config import Constants, ladder_heights
from repro.core import CorenessDecomposition, DensityEstimator
from repro.graphs import DynamicGraph, generators as gen, streams


SMALL = Constants(sample_c=0.5, min_B=4, duplication_cap=8)


class TestLadderHeights:
    def test_strictly_increasing(self):
        hs = ladder_heights(100, 0.3)
        assert hs == sorted(set(hs))
        assert hs[0] == 1
        assert hs[-1] >= 100

    def test_h_max_override(self):
        hs = ladder_heights(1000, 0.3, h_max=10)
        assert hs[-1] >= 10
        assert hs[-1] < 20

    def test_density_of_rungs_controlled_by_eps(self):
        dense = ladder_heights(100, 0.1)
        coarse = ladder_heights(100, 0.8)
        assert len(dense) > len(coarse)


class TestCorenessLadder:
    def test_band_on_known_families(self):
        # K10 (core 9) + path (core 1) in one graph
        n1, clique_edges = gen.clique(10)
        path_edges = [(20 + i, 21 + i) for i in range(10)]
        edges = clique_edges + path_edges
        n = 32
        cd = CorenessDecomposition(n, eps=0.35, constants=SMALL, seed=1)
        cd.insert_batch(edges)
        for v in range(10):
            est = cd.estimate(v)
            assert 0.25 * 9 <= est <= 3.0 * 9, f"clique vertex {v}: {est}"
        for v in range(20, 30):
            assert cd.estimate(v) <= 4

    def test_estimates_dict(self):
        cd = CorenessDecomposition(16, eps=0.4, constants=SMALL)
        cd.insert_batch([(0, 1), (1, 2)])
        ests = cd.estimates()
        assert set(ests) == {0, 1, 2}

    def test_tracks_deletions(self):
        n, edges = gen.clique(9)
        cd = CorenessDecomposition(16, eps=0.4, constants=SMALL, seed=2)
        cd.insert_batch(edges)
        hi = cd.estimate(0)
        cd.delete_batch(edges[:30])
        assert cd.estimate(0) <= hi

    def test_band_against_exact_across_batches(self):
        n, edges = gen.planted_dense(36, block=10, p_in=1.0, out_edges=20, seed=3)
        g = DynamicGraph(n, edges)
        cd = CorenessDecomposition(n, eps=0.35, constants=SMALL, seed=3)
        for i in range(0, len(edges), 30):
            cd.insert_batch(edges[i : i + 30])
        exact = core_numbers(g)
        for v in g.touched_vertices():
            c = exact.get(v, 0)
            if c >= 2:  # additive slack drowns core-1 vertices
                est = cd.estimate(v)
                assert 0.2 * c <= est <= 4.0 * c, f"v={v} core={c} est={est}"


class TestDensityLadder:
    def test_density_estimate_band(self):
        n, edges = gen.clique(10)  # rho = 4.5
        de = DensityEstimator(n, eps=0.35, constants=SMALL, seed=4)
        de.insert_batch(edges)
        rho = 4.5
        assert 0.5 * rho <= de.density_estimate() <= 2.0 * rho

    def test_arboricity_estimate_is_twice_density(self):
        de = DensityEstimator(16, eps=0.4, constants=SMALL)
        de.insert_batch([(0, 1)])
        assert de.arboricity_estimate() == 2 * de.density_estimate()

    def test_orientation_outdegree_bounded(self):
        n, edges = gen.erdos_renyi(25, 75, seed=5)
        rho = exact_density(DynamicGraph(n, edges))
        de = DensityEstimator(n, eps=0.35, constants=SMALL, seed=5)
        de.insert_batch(edges)
        # Theorem 1.2: delta+ <= (2 + eps) rho; allow slack for constants
        assert de.max_outdegree() <= max(3.0, 3.0 * rho)

    def test_estimate_follows_churn(self):
        de = DensityEstimator(20, eps=0.4, constants=SMALL, seed=6)
        for op in streams.churn(20, steps=12, batch_size=6, seed=7):
            if op.kind == "insert":
                de.insert_batch(op.edges)
            else:
                de.delete_batch(op.edges)
        assert de.density_estimate() >= 1.0

    def test_orientation_of_every_edge(self):
        n, edges = gen.grid(4, 4)
        de = DensityEstimator(n, eps=0.4, constants=SMALL)
        de.insert_batch(edges)
        for u, v in edges:
            tail, head = de.orientation_of(u, v)
            assert {tail, head} == {u, v}

    def test_invariants(self):
        n, edges = gen.cycle(10)
        de = DensityEstimator(n, eps=0.4, constants=SMALL)
        de.insert_batch(edges)
        de.check_invariants()
