"""Tests for the LOWOUTDEGREE interface (Lemma 6.1)."""

import pytest

from repro.config import Constants
from repro.core import LowOutDegree
from repro.graphs import generators as gen, streams


SMALL = Constants(sample_c=0.5, min_B=4, duplication_cap=8)


def make(H=4, n=32, eps=0.4, seed=0):
    return LowOutDegree(H, eps, n, constants=SMALL, seed=seed)


class TestMirror:
    def test_d_out_after_insert(self):
        lod = make()
        lod.insert_batch([(0, 1), (1, 2)])
        outs = [sorted(lod.d_out(v)) for v in range(3)]
        # each edge appears in exactly one endpoint's out-set
        total = sum(len(o) for o in outs)
        assert total == 2
        lod.check_invariants()

    def test_d_out_after_delete(self):
        lod = make()
        lod.insert_batch([(0, 1), (1, 2)])
        lod.delete_batch([(0, 1)])
        total = sum(len(lod.d_out(v)) for v in range(3))
        assert total == 1
        lod.check_invariants()

    def test_mirror_consistent_under_churn(self):
        lod = make(H=5, n=24)
        for op in streams.churn(24, steps=25, batch_size=6, seed=1):
            if op.kind == "insert":
                lod.insert_batch(op.edges)
            else:
                lod.delete_batch(op.edges)
            lod.check_invariants()

    def test_orientation_of(self):
        lod = make()
        lod.insert_batch([(3, 4)])
        tail, head = lod.orientation_of(3, 4)
        assert {tail, head} == {3, 4}
        assert head in lod.d_out(tail)


class TestChangeTables:
    def test_d_ins_lists_new_edges(self):
        lod = make()
        lod.insert_batch([(0, 1), (2, 3)])
        keys = set(lod.d_ins.keys())
        assert {(0, 1), (2, 3)} <= keys

    def test_d_del_marks_deletions_none(self):
        lod = make()
        lod.insert_batch([(0, 1)])
        lod.delete_batch([(0, 1)])
        assert lod.d_del.get((0, 1), "missing") is None

    def test_tables_reset_per_batch(self):
        lod = make()
        lod.insert_batch([(0, 1)])
        lod.insert_batch([(2, 3)])
        assert (0, 1) not in lod.d_ins.keys() or lod.d_ins.get((0, 1)) is not None
        assert (2, 3) in set(lod.d_ins.keys())

    def test_table_size_bounded_by_changes(self):
        lod = make(H=4, n=40)
        n, edges = gen.erdos_renyi(40, 120, seed=2)
        lod.insert_batch(edges[:100])
        lod.insert_batch(edges[100:110])
        # the change table of a 10-edge batch must not mention untouched edges
        assert len(lod.d_ins) <= 10 + 60  # batch + possible reversals


class TestVerdictPassThrough:
    def test_low_when_sparse(self):
        lod = make(H=6)
        n, edges = gen.path(12)
        lod.insert_batch(edges)
        assert lod.guarantees_low()

    def test_high_when_dense(self):
        lod = make(H=1, n=16)
        n, edges = gen.clique(12)
        lod.insert_batch(edges)
        assert not lod.guarantees_low()

    def test_max_outdegree_reported(self):
        lod = make(H=4)
        n, edges = gen.grid(4, 4)
        lod.insert_batch(edges)
        assert 1 <= lod.max_outdegree() <= 2 * 4 + 1
