"""Unit tests for the ranked out-set and the incoming-edge index."""

import pytest

from repro.core.inindex import InIndex
from repro.core.outset import OutSet


class TestOutSet:
    def test_rank_is_one_indexed(self):
        s = OutSet()
        s.add((5, 0))
        s.add((2, 0))
        assert s.rank((2, 0)) == 1
        assert s.rank((5, 0)) == 2

    def test_select_inverse_of_rank(self):
        s = OutSet()
        for key in [(9, 0), (1, 1), (1, 0), (4, 2)]:
            s.add(key)
        for pos in range(1, 5):
            assert s.rank(s.select(pos)) == pos

    def test_first(self):
        s = OutSet()
        for h in (30, 10, 20):
            s.add((h, 0))
        assert s.first(2) == [(10, 0), (20, 0)]
        assert s.first(99) == [(10, 0), (20, 0), (30, 0)]

    def test_add_duplicate_raises(self):
        s = OutSet()
        s.add((1, 0))
        with pytest.raises(AssertionError):
            s.add((1, 0))

    def test_remove_absent_raises(self):
        with pytest.raises(AssertionError):
            OutSet().remove((1, 0))

    def test_rank_of_absent_raises(self):
        with pytest.raises(AssertionError):
            OutSet().rank((1, 0))

    def test_copies_are_distinct_keys(self):
        s = OutSet()
        s.add((7, 0))
        s.add((7, 1))
        assert len(s) == 2
        s.remove((7, 0))
        assert (7, 1) in s and (7, 0) not in s


class TestInIndex:
    def test_add_lookup(self):
        ix = InIndex()
        ix.add((3, 0), tr=1, label=0, lev=4)
        assert ix.any_at(1, 0, 4) == (3, 0)
        assert ix.any_at(1, 0, 5) is None
        assert ix.any_at(2, 0, 4) is None
        assert ix.any_at(1, 1, 4) is None

    def test_remove(self):
        ix = InIndex()
        ix.add((3, 0), 1, 0, 4)
        ix.remove((3, 0), 1, 0, 4)
        assert ix.any_at(1, 0, 4) is None
        assert len(ix) == 0

    def test_remove_wrong_slot_raises(self):
        ix = InIndex()
        ix.add((3, 0), 1, 0, 4)
        with pytest.raises(AssertionError):
            ix.remove((3, 0), 2, 0, 4)

    def test_double_add_raises(self):
        ix = InIndex()
        ix.add((3, 0), 1, 0, 4)
        with pytest.raises(AssertionError):
            ix.add((3, 0), 1, 0, 4)

    def test_move(self):
        ix = InIndex()
        ix.add((3, 0), 1, 0, 4)
        ix.move((3, 0), (1, 0, 4), (2, 1, 5))
        assert ix.any_at(1, 0, 4) is None
        assert ix.any_at(2, 1, 5) == (3, 0)

    def test_move_identity_is_noop(self):
        ix = InIndex()
        ix.add((3, 0), 1, 0, 4)
        ix.move((3, 0), (1, 0, 4), (1, 0, 4))
        assert ix.any_at(1, 0, 4) == (3, 0)

    def test_any_truncated_scans_labels(self):
        ix = InIndex()
        ix.add((3, 0), tr=6, label=2, lev=5)
        assert ix.any_truncated(6, 5) == (3, 0)
        assert ix.any_truncated(6, 4) is None

    def test_entries_roundtrip(self):
        ix = InIndex()
        data = [((1, 0), 1, 0, 2), ((2, 0), 3, 1, 4), ((2, 1), 3, 1, 4)]
        for tail, tr, label, lev in data:
            ix.add(tail, tr, label, lev)
        assert sorted(ix.entries()) == sorted(data)
        assert len(ix) == 3
