"""Regression tests for deviation D1 (DESIGN.md).

The paper's literal token-pushing rules let a token arriving through a
rank <= H arc *occupy* a receiver whose frozen level is >= H + 1; the
occupied receiver then blocks other tokens via condition (c) while its own
settlement is invisible under ``min(H, .)`` — terminating the game in a
state whose settlement violates H-balancedness.  The fix absorbs such
tokens transparently (receiver-side budget).  These tests pin both the
original failing workload and the local shape of the fix.
"""

from repro.core import BalancedOrientation
from repro.graphs import streams


class TestOriginalWorkload:
    def test_churn_seed9_regression(self):
        """The exact stream that exposed the deadlock (H=5, op #70)."""
        st = BalancedOrientation(H=5)
        for op in streams.churn(40, steps=80, batch_size=12, seed=9):
            if op.kind == "insert":
                st.insert_batch(op.edges)
            else:
                st.delete_batch(op.edges)
            st.check_invariants()


class TestTransparentAbsorption:
    def _hub_scenario(self, H):
        """Build: hub with level > H, plus low vertices hanging off it."""
        st = BalancedOrientation(H=H)
        hub = 0
        spokes = list(range(1, 2 * H + 4))
        st.insert_batch([(hub, s) for s in spokes])
        return st, hub, spokes

    def test_deleting_below_high_hub_stays_balanced(self):
        H = 3
        st, hub, spokes = self._hub_scenario(H)
        # attach chains under a few spokes, then delete their far edges so
        # tokens must push upward toward the saturated hub
        base = 100
        extra = [(spokes[i], base + i) for i in range(4)]
        st.insert_batch(extra)
        st.check_invariants()
        st.delete_batch(extra)
        st.check_invariants()

    def test_mass_deletion_through_saturated_region(self):
        H = 2
        st = BalancedOrientation(H=H)
        from repro.graphs.generators import clique

        _, edges = clique(9)
        st.insert_batch(edges)
        st.check_invariants()
        # delete half the clique edge by edge: every deletion pushes
        # tokens around the saturated zone
        for e in edges[: len(edges) // 2]:
            st.delete_batch([e])
            st.check_invariants()
