"""Tests for the query layer: k-cores, dense witnesses, pseudoforests."""

import pytest

from repro.baselines import core_numbers, exact_density
from repro.config import Constants
from repro.core import (
    CorenessMonitor,
    DensityEstimator,
    extract_dense_set,
    pseudoforest_decomposition,
)
from repro.graphs import DynamicGraph, generators as gen


SMALL = Constants(sample_c=0.5, min_B=4, duplication_cap=8)


def planted_monitor():
    n, edges = gen.planted_dense(36, block=10, p_in=1.0, out_edges=25, seed=30)
    mon = CorenessMonitor(n, eps=0.4, constants=SMALL, seed=30)
    mon.insert_batch(edges)
    return mon, n, edges


class TestCorenessMonitor:
    def test_membership_separates_block_from_sea(self):
        mon, n, edges = planted_monitor()
        core9ish = mon.vertices_with_core_at_least(4)
        assert set(range(10)) <= core9ish
        # the sparse sea (core <= 2) stays out
        exact = core_numbers(mon.graph)
        sea = {v for v in mon.graph.touched_vertices() if exact.get(v, 0) <= 1}
        assert not (sea & core9ish)

    def test_core_subgraph_contains_block_edges(self):
        mon, n, edges = planted_monitor()
        sub = mon.core_subgraph(4)
        block_edges = {e for e in edges if e[0] < 10 and e[1] < 10}
        assert block_edges <= sub.edges

    def test_connected_k_cores_of_two_cliques(self):
        mon = CorenessMonitor(40, eps=0.4, constants=SMALL)
        _, c1 = gen.clique(7, offset=0)
        _, c2 = gen.clique(7, offset=20)
        mon.insert_batch(c1 + c2)
        comps = mon.connected_k_cores(3)
        assert len(comps) == 2
        assert {frozenset(c) for c in comps} == {
            frozenset(range(7)),
            frozenset(range(20, 27)),
        }

    def test_hierarchy_is_nested(self):
        mon, n, edges = planted_monitor()
        levels = mon.hierarchy()
        for (l1, s1), (l2, s2) in zip(levels, levels[1:]):
            assert l1 < l2
            assert s2 <= s1

    def test_deletion_shrinks_core(self):
        mon, n, edges = planted_monitor()
        before = mon.vertices_with_core_at_least(4)
        block_edges = [e for e in edges if e[0] < 10 and e[1] < 10]
        mon.delete_batch(block_edges)
        after = mon.vertices_with_core_at_least(4)
        assert len(after) < len(before)

    def test_updates_validated_through_mirror(self):
        from repro.errors import BatchError

        mon = CorenessMonitor(8, eps=0.4, constants=SMALL)
        mon.insert_batch([(0, 1)])
        with pytest.raises(BatchError):
            mon.insert_batch([(1, 0)])


class TestDenseWitness:
    def test_witness_finds_planted_block(self):
        n, edges = gen.planted_dense(36, block=10, p_in=1.0, out_edges=20, seed=31)
        de = DensityEstimator(n, eps=0.4, constants=SMALL, seed=31)
        de.insert_batch(edges)
        witness = extract_dense_set(de)
        g = DynamicGraph(n, edges)
        rho = exact_density(g)
        assert witness
        assert g.density_of(witness) >= rho / 4  # a constant-factor witness

    def test_witness_on_sparse_graph(self):
        n, edges = gen.path(12)
        de = DensityEstimator(n, eps=0.4, constants=SMALL)
        de.insert_batch(edges)
        witness = extract_dense_set(de)
        assert witness  # nonempty even when everything is sparse

    def test_empty_structure(self):
        de = DensityEstimator(8, eps=0.4, constants=SMALL)
        de.insert_batch([])
        assert extract_dense_set(de) == set()


class TestPseudoforests:
    def test_partition_covers_each_edge_once(self):
        n, edges = gen.erdos_renyi(24, 60, seed=32)
        de = DensityEstimator(n, eps=0.4, constants=SMALL, seed=32)
        de.insert_batch(edges)
        parts = pseudoforest_decomposition(de)
        covered = []
        for part in parts:
            for v, w in part.items():
                covered.append(tuple(sorted((v, w))))
        assert sorted(covered) == sorted(edges)

    def test_each_part_is_functional(self):
        n, edges = gen.grid(4, 5)
        de = DensityEstimator(n, eps=0.4, constants=SMALL)
        de.insert_batch(edges)
        for part in pseudoforest_decomposition(de):
            assert len(part) == len(set(part))  # dict: one successor per vertex

    def test_part_count_equals_max_outdegree(self):
        n, edges = gen.cycle(10)
        de = DensityEstimator(n, eps=0.4, constants=SMALL)
        de.insert_batch(edges)
        parts = pseudoforest_decomposition(de)
        assert len(parts) == de.max_outdegree()
