"""Regression tests for the ladder query caches (docs/PERFORMANCE.md).

Queries used to linear-scan every rung on every call.  Now they binary
search the saturation-monotone ladder and memoise per vertex, invalidated
only for vertices a batch could actually have changed.  These tests count
*rung-level* probes (``FixedHCorenessEstimator.estimate`` /
``FixedHDensityGuard.guarantees_low`` calls) to pin that behaviour down.
"""

import math
import random

from repro.config import Constants
from repro.core.coreness import CorenessDecomposition
from repro.core.density import DensityEstimator
from repro.instrument.work_depth import CostModel

SMALL = Constants(sample_c=0.5, min_B=4, duplication_cap=8)


def _wrap_rung_estimates(ladder) -> list[tuple[int, int]]:
    """Record every rung-level ``estimate`` probe as ``(rung, vertex)``."""
    calls: list[tuple[int, int]] = []
    for i, rung in enumerate(ladder.rungs):
        def wrapped(v, _orig=rung.estimate, _i=i):
            calls.append((_i, v))
            return _orig(v)

        rung.estimate = wrapped
    return calls


def _wrap_rung_verdicts(ladder) -> list[int]:
    """Record every rung-level ``guarantees_low`` probe."""
    calls: list[int] = []
    for i, rung in enumerate(ladder.rungs):
        def wrapped(_orig=rung.guarantees_low, _i=i):
            calls.append(_i)
            return _orig()

        rung.guarantees_low = wrapped
    return calls


def _core(n=24, edges=()):
    core = CorenessDecomposition(n, eps=0.35, cm=CostModel(), constants=SMALL)
    if edges:
        core.insert_batch(edges)
    return core


CYCLE = [(i, (i + 1) % 10) for i in range(10)]
STAR = [(0, i) for i in range(2, 9)]


class TestCorenessMemo:
    def test_second_query_makes_no_rung_probes(self):
        core = _core(edges=CYCLE + STAR)
        calls = _wrap_rung_estimates(core)
        first = core.estimates()
        assert calls, "a cold query must probe the rungs"
        calls.clear()
        assert core.estimates() == first
        assert core.max_estimate() == max(first.values())
        assert calls == [], "a warm query must be answered from the memo"

    def test_binary_search_probe_bound(self):
        core = _core(edges=CYCLE + STAR)
        calls = _wrap_rung_estimates(core)
        core.estimate(0)
        # one probe at the top rung + O(log #rungs) bisection probes,
        # instead of the historical O(#rungs) linear scan.
        bound = math.ceil(math.log2(len(core.rungs))) + 1
        assert 0 < len(calls) <= bound
        assert len(core.rungs) > bound  # the bound is actually an improvement

    def test_binary_search_matches_linear_scan(self):
        rng = random.Random(3)
        edges = {(min(u, v), max(u, v)) for u, v in
                 (rng.sample(range(20), 2) for _ in range(60))}
        core = _core(n=20, edges=sorted(edges))
        for v in range(20):
            linear = next(
                (
                    float(core.heights[i])
                    for i in range(len(core.rungs))
                    if core.rungs[i].estimate(v) < core.heights[i]
                ),
                float(core.heights[-1]),
            )
            assert core.estimate(v) == linear

    def test_invalidation_touches_only_dirty_vertices(self):
        # two far-apart components: a batch in one must not evict the other
        left = [(i, (i + 1) % 6) for i in range(6)]
        right = [(10 + i, 10 + (i + 1) % 6) for i in range(6)]
        core = _core(edges=left + right)
        warm = core.estimates()
        assert set(core._est_cache) == set(warm)
        core.insert_batch([(10, 13), (11, 14)])
        for v in range(6):
            assert v in core._est_cache, "left component must stay memoised"
        assert 10 not in core._est_cache and 13 not in core._est_cache
        # the surviving entries are still correct
        replica = _core(edges=left + right)
        replica.insert_batch([(10, 13), (11, 14)])
        assert core.estimates() == replica.estimates()

    def test_cache_survives_deletes_correctly(self):
        core = _core(edges=CYCLE + STAR)
        core.estimates()
        core.delete_batch(STAR[:4])
        replica = _core(edges=CYCLE + STAR)
        replica.delete_batch(STAR[:4])
        assert core.estimates() == replica.estimates()
        assert core.max_estimate() == replica.max_estimate()


class TestDensityMemo:
    def test_first_low_index_is_memoised(self):
        dens = DensityEstimator(24, eps=0.35, cm=CostModel(), constants=SMALL)
        dens.insert_batch(CYCLE + STAR)
        calls = _wrap_rung_verdicts(dens)
        rho = dens.density_estimate()
        assert calls, "a cold query must probe the rungs"
        assert len(calls) <= math.ceil(math.log2(len(dens.rungs))) + 1
        calls.clear()
        assert dens.density_estimate() == rho
        dens.max_outdegree()
        assert calls == [], "warm density queries reuse the first-'low' index"
        dens.insert_batch([(1, 7)])
        dens.density_estimate()
        assert calls, "an update must re-open the verdict search"
