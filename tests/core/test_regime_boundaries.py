"""Boundary cases of the Theorem 5.1/5.2 regime selection.

The estimators switch implementation exactly at ``H == B`` (coreness:
duplication vs sampling) and ``H == B / eps`` (density: duplication vs
buckets).  These tests pin behaviour on and around the seams, plus the
properties each regime must preserve across the switch.
"""

import pytest

from repro.config import Constants
from repro.core import FixedHCorenessEstimator, FixedHDensityGuard
from repro.graphs import generators as gen


SMALL = Constants(sample_c=0.5, min_B=4, duplication_cap=8)
EPS = 0.4


def B_for(n):
    return SMALL.B(n, EPS)


class TestCorenessSeam:
    def test_exactly_B_uses_duplication(self):
        n = 64
        B = B_for(n)
        est = FixedHCorenessEstimator(H=B, eps=EPS, n=n, constants=SMALL)
        assert est.regime == "duplication"
        assert est.K == 1  # ceil(B/H) = 1 at the seam

    def test_just_above_B_uses_sampling(self):
        n = 64
        B = B_for(n)
        est = FixedHCorenessEstimator(H=B + 1, eps=EPS, n=n, constants=SMALL)
        assert est.regime == "sampling"
        assert 0 < est.sampler.p < 1

    def test_both_sides_give_similar_answers_on_same_graph(self):
        n, edges = gen.planted_dense(64, block=12, p_in=1.0, out_edges=30, seed=90)
        B = B_for(n)
        below = FixedHCorenessEstimator(H=B, eps=EPS, n=n, constants=SMALL, seed=1)
        above = FixedHCorenessEstimator(H=B + 2, eps=EPS, n=n, constants=SMALL, seed=1)
        below.insert_batch(edges)
        above.insert_batch(edges)
        for v in range(12):
            lo, hi = sorted((below.estimate(v), above.estimate(v)))
            assert hi <= 6 * lo + 6  # no cliff at the seam

    def test_sampling_probability_shrinks_with_h(self):
        n = 64
        a = FixedHCorenessEstimator(H=100, eps=EPS, n=n, constants=SMALL)
        b = FixedHCorenessEstimator(H=1000, eps=EPS, n=n, constants=SMALL)
        assert b.sampler.p < a.sampler.p


class TestDensitySeam:
    def test_below_seam_duplicates_with_odd_k(self):
        n = 64
        guard = FixedHDensityGuard(H=2, eps=EPS, n=n, constants=SMALL)
        assert guard.regime == "duplication"
        assert guard.K % 2 == 1

    def test_above_seam_buckets(self):
        n = 64
        B = B_for(n)
        H = int(B / EPS) + 2
        guard = FixedHDensityGuard(H=H, eps=EPS, n=n, constants=SMALL)
        assert guard.regime == "buckets"
        assert guard.H_adj >= H

    def test_bucket_count_grows_with_h(self):
        n = 64
        g1 = FixedHDensityGuard(H=100, eps=EPS, n=n, constants=SMALL)
        g2 = FixedHDensityGuard(H=400, eps=EPS, n=n, constants=SMALL)
        if g1.regime == "buckets" and g2.regime == "buckets":
            assert g2.T > g1.T

    def test_verdict_consistent_across_seam(self):
        # a sparse graph must be "low" in both regimes
        n, edges = gen.grid(6, 6)
        B = B_for(36)
        for H in (max(2, int(B / EPS) - 1), int(B / EPS) + 2):
            guard = FixedHDensityGuard(H=H, eps=EPS, n=36, constants=SMALL)
            guard.insert_batch(edges)
            assert guard.verdict() == "low", (H, guard.regime)


class TestDuplicationCapBehaviour:
    def test_cap_respected_even_for_tiny_h(self):
        est = FixedHCorenessEstimator(H=1, eps=0.2, n=256, constants=SMALL)
        assert est.K <= SMALL.duplication_cap

    def test_raising_cap_raises_k(self):
        big = Constants(sample_c=0.5, min_B=4, duplication_cap=32)
        a = FixedHCorenessEstimator(H=1, eps=0.2, n=256, constants=SMALL)
        b = FixedHCorenessEstimator(H=1, eps=0.2, n=256, constants=big)
        assert b.K >= a.K
