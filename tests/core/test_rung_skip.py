"""Property tests for rung-skip filtering (docs/PERFORMANCE.md).

Filtering defers updates on rungs whose hint sits provably above what the
graph can saturate.  It is an *optimisation*, not an approximation: every
observable query answer must be identical with filtering on and off, for
any mixed insert/delete schedule — including across a snapshot/rollback
cycle, which restores the deferred queues and the degree certificate.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import Constants
from repro.core.coreness import CorenessDecomposition
from repro.core.density import DensityEstimator
from repro.instrument.work_depth import CostModel
from repro.resilience.guard import capture, rollback

SMALL = Constants(sample_c=0.5, min_B=4, duplication_cap=8)


def _schedule(n: int, steps: int, seed: int) -> list[tuple[str, list]]:
    """Deterministic mixed batches with a valid live edge-set model."""
    rng = random.Random(seed)
    live: set[tuple[int, int]] = set()
    out: list[tuple[str, list]] = []
    for _ in range(steps):
        if live and rng.random() < 0.35:
            k = rng.randint(1, min(5, len(live)))
            dele = rng.sample(sorted(live), k)
            live.difference_update(dele)
            out.append(("delete_batch", dele))
        else:
            fresh = []
            for _ in range(rng.randint(1, 7)):
                u, v = rng.sample(range(n), 2)
                e = (min(u, v), max(u, v))
                if e not in live and e not in fresh:
                    fresh.append(e)
            if fresh:
                live.update(fresh)
                out.append(("insert_batch", fresh))
    return out


def _build(kind, n, rung_skip):
    cm = CostModel()
    return kind(n, eps=0.35, cm=cm, constants=SMALL, rung_skip=rung_skip)


def _touched(batches) -> list[int]:
    return sorted({v for _, edges in batches for e in edges for v in e})


def _core_view(core, vertices):
    return ({v: core.estimate(v) for v in vertices}, core.max_estimate())


def _dens_view(dens):
    return (dens.density_estimate(), dens.max_outdegree())


class TestEquivalence:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_coreness_filtering_is_invisible(self, seed):
        batches = _schedule(16, 8, seed)
        plain = _build(CorenessDecomposition, 16, rung_skip=False)
        skip = _build(CorenessDecomposition, 16, rung_skip=True)
        for method, edges in batches:
            getattr(plain, method)(edges)
            getattr(skip, method)(edges)
        vs = _touched(batches)
        assert _core_view(plain, vs) == _core_view(skip, vs)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_density_filtering_is_invisible(self, seed):
        batches = _schedule(16, 8, seed)
        plain = _build(DensityEstimator, 16, rung_skip=False)
        skip = _build(DensityEstimator, 16, rung_skip=True)
        for method, edges in batches:
            getattr(plain, method)(edges)
            getattr(skip, method)(edges)
        assert _dens_view(plain) == _dens_view(skip)
        # the exported orientation is the same rung's, arc for arc
        for v in _touched(batches):
            assert sorted(plain.orientation_out(v)) == sorted(skip.orientation_out(v))

    @given(seed=st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=10, deadline=None)
    def test_rollback_restores_deferred_state(self, seed):
        """Snapshot mid-schedule, keep mutating, roll back, replay the tail:
        the filtered ladder must land exactly where the unfiltered one does."""
        batches = _schedule(14, 8, seed)
        cut = len(batches) // 2
        plain = _build(CorenessDecomposition, 14, rung_skip=False)
        skip = _build(CorenessDecomposition, 14, rung_skip=True)
        for method, edges in batches[:cut]:
            getattr(plain, method)(edges)
            getattr(skip, method)(edges)
        snap = capture(skip)
        # a detour that the rollback must fully erase (including its effect
        # on the deferred queues, degree certificate, and query memos);
        # detour edges are picked absent from the live set at the cut
        live: set[tuple[int, int]] = set()
        for method, edges in batches[:cut]:
            (live.update if method == "insert_batch" else live.difference_update)(
                edges
            )
        detour = [
            e
            for e in [(0, 1), (1, 2), (2, 3), (0, 13), (3, 13), (4, 12)]
            if e not in live
        ][:4]
        skip.insert_batch(detour)
        skip.estimates()
        rollback(skip, snap)
        for method, edges in batches[cut:]:
            getattr(plain, method)(edges)
            getattr(skip, method)(edges)
        vs = _touched(batches)
        assert _core_view(plain, vs) == _core_view(skip, vs)


class TestSkipAccounting:
    def test_skipped_rungs_are_counted(self):
        skip = _build(CorenessDecomposition, 24, rung_skip=True)
        skip.insert_batch([(0, 1), (1, 2)])
        assert skip.cm.counters.get("ladder_rungs_skipped", 0) > 0

    def test_filtering_reduces_work_on_sparse_batches(self):
        batches = _schedule(24, 10, seed=42)
        plain = _build(CorenessDecomposition, 24, rung_skip=False)
        skip = _build(CorenessDecomposition, 24, rung_skip=True)
        for method, edges in batches:
            getattr(plain, method)(edges)
            getattr(skip, method)(edges)
        assert skip.cm.work < plain.cm.work

    def test_flush_all_pending_materialises_every_rung(self):
        skip = _build(DensityEstimator, 24, rung_skip=True)
        skip.insert_batch([(0, 1), (1, 2), (2, 0)])
        assert not all(skip._live)
        skip.flush_all_pending()
        assert all(skip._live)
        assert all(not q for q in skip._pending)
        plain = _build(DensityEstimator, 24, rung_skip=False)
        plain.insert_batch([(0, 1), (1, 2), (2, 0)])
        assert _dens_view(skip) == _dens_view(plain)
