"""Tests for edge sampling + Appendix A concentration (Lemmas A.1–A.4)."""

import pytest

from repro.baselines import core_numbers, exact_density, arboricity
from repro.core import EdgeSampler, expected_band, sample_graph
from repro.errors import ParameterError
from repro.graphs import DynamicGraph, generators as gen


class TestSampler:
    def test_deterministic_per_edge(self):
        s = EdgeSampler(0.5, seed=1)
        assert s.keeps(3, 7) == s.keeps(7, 3)
        assert all(s.keeps(1, 2) == s.keeps(1, 2) for _ in range(5))

    def test_extremes(self):
        assert EdgeSampler(1.0).keeps(0, 1)
        assert not EdgeSampler(0.0).keeps(0, 1)

    def test_invalid_probability(self):
        with pytest.raises(ParameterError):
            EdgeSampler(1.5)

    def test_rate_roughly_p(self):
        s = EdgeSampler(0.3, seed=2)
        kept = sum(1 for u in range(100) for v in range(u + 1, 100) if s.keeps(u, v))
        total = 100 * 99 // 2
        assert 0.25 < kept / total < 0.35

    def test_different_seeds_differ(self):
        a = EdgeSampler(0.5, seed=1)
        b = EdgeSampler(0.5, seed=2)
        edges = [(u, u + 1 + k) for u in range(50) for k in range(3)]
        assert a.filter(edges) != b.filter(edges)

    def test_filter_canonicalizes(self):
        s = EdgeSampler(1.0)
        assert s.filter([(5, 2)]) == [(2, 5)]


class TestSampleGraph:
    def test_subset_of_original(self):
        n, edges = gen.erdos_renyi(40, 200, seed=3)
        g = DynamicGraph(n, edges)
        gp = sample_graph(g, 0.4, seed=4)
        assert gp.edges <= g.edges
        assert gp.n == g.n


class TestConcentration:
    """Empirical versions of Lemmas A.1–A.4 at a generous slack constant."""

    def test_coreness_concentrates(self):
        n, edges = gen.planted_dense(80, block=30, p_in=0.9, seed=5)
        g = DynamicGraph(n, edges)
        core = max(core_numbers(g).values())
        p = 0.5
        for seed in range(3):
            gp = sample_graph(g, p, seed=seed)
            sampled_core = max(core_numbers(gp).values(), default=0)
            band = expected_band(core, p, eps=0.5, n=n, c=2.0)
            assert band.contains(sampled_core)

    def test_density_concentrates(self):
        n, edges = gen.planted_dense(60, block=25, p_in=1.0, seed=6)
        g = DynamicGraph(n, edges)
        rho = exact_density(g)
        p = 0.5
        for seed in range(3):
            gp = sample_graph(g, p, seed=seed)
            band = expected_band(rho, p, eps=0.5, n=n, c=2.0)
            assert band.contains(exact_density(gp))

    def test_arboricity_concentrates(self):
        n, edges = gen.clique(12)
        g = DynamicGraph(n, edges)
        lam = arboricity(g)
        p = 0.5
        for seed in range(2):
            gp = sample_graph(g, p, seed=seed)
            band = expected_band(lam, p, eps=0.5, n=n, c=2.0)
            assert band.contains(arboricity(gp))

    def test_band_contains(self):
        band = expected_band(10, 0.5, eps=0.5, n=16, c=1.0)
        assert band.contains(5.0)
        assert not band.contains(100.0)
