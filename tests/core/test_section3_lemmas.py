"""Direct empirical checks of the Section 3 relations.

These are the paper's bridge lemmas between balanced orientations and the
density measures; the estimator-level tests exercise them indirectly,
these test them *as stated* on concrete balanced orientations.

* Lemma 3.2: for a balanced orientation,
  ``rho(G) <= max d+ <= (1 + eps/2) rho(G) + 4 log n / eps``.
* Corollary 3.3: ``lambda/2 <= max d+`` and the same upper envelope.
* Lemma 3.4 / 3.5: for an H-balanced orientation and vertices below the
  truncation, ``d+(v)`` sandwiches ``core(v)`` up to the (1/2-eps, 2+eps)
  factors and the additive ``2 log n / eps`` slack.
"""

import math

import pytest

from repro.baselines import arboricity, core_numbers, exact_density
from repro.core import BalancedOrientation
from repro.graphs import DynamicGraph, generators as gen

EPS = 0.5


def balanced_structure(edges, H):
    st = BalancedOrientation(H=H)
    st.insert_batch(edges)
    return st


def slack(n):
    return 4 * math.log2(max(n, 2)) / EPS


CASES = [
    ("er", lambda: gen.erdos_renyi(40, 160, seed=80)),
    ("planted", lambda: gen.planted_dense(40, block=12, p_in=1.0, out_edges=30, seed=81)),
    ("ba", lambda: gen.barabasi_albert(40, 3, seed=82)),
]


class TestLemma32Density:
    @pytest.mark.parametrize("name,make", CASES)
    def test_max_outdegree_sandwiches_density(self, name, make):
        n, edges = make()
        # H = n makes the orientation effectively untruncated (balanced)
        st = balanced_structure(edges, H=n)
        rho = exact_density(DynamicGraph(n, edges))
        mx = st.max_outdegree()
        assert mx >= math.floor(rho), f"{name}: max d+ {mx} below rho {rho}"
        assert mx <= (1 + EPS / 2) * rho + slack(n)


class TestCorollary33Arboricity:
    @pytest.mark.parametrize("name,make", CASES[:2])
    def test_max_outdegree_vs_arboricity(self, name, make):
        n, edges = make()
        st = balanced_structure(edges, H=n)
        lam = arboricity(DynamicGraph(n, edges))
        mx = st.max_outdegree()
        assert mx >= lam / 2 - 1
        assert mx <= (1 + EPS) * lam + slack(n)


class TestLemmas34_35Coreness:
    @pytest.mark.parametrize("H", [8, 16])
    def test_outdegree_sandwiches_coreness_below_truncation(self, H):
        n, edges = gen.planted_dense(40, block=10, p_in=1.0, out_edges=30, seed=83)
        st = balanced_structure(edges, H=H)
        cores = core_numbers(DynamicGraph(n, edges))
        add = 2 * math.log2(n) / EPS
        for v in range(n):
            d = st.outdegree(v)
            c = cores.get(v, 0)
            if d < H - add:  # the lemmas' applicability condition
                # Lemma 3.4 lower, Lemma 3.5 upper
                assert d >= (0.5 - EPS) * c - add
                assert d <= (2 + EPS) * c + add

    def test_saturated_vertices_certify_high_core(self):
        # Lemma 3.5 second case: d+ near H forces core >= (H - slack)/(2+eps)
        n, edges = gen.clique(14)  # core 13 everywhere
        H = 5
        st = balanced_structure(edges, H=H)
        add = 2 * math.log2(n) / EPS
        cores = core_numbers(DynamicGraph(n, edges))
        for v in range(n):
            if st.outdegree(v) >= H - add:
                assert cores[v] >= (H - 2 * add) / (2 + EPS)


class TestBalancednessIsTheDriver:
    def test_unbalanced_orientation_breaks_the_sandwich(self):
        """Sanity: the lemmas are about *balanced* orientations — a skewed
        orientation of the same graph violates the upper envelope, so the
        tests above are not vacuous."""
        n, edges = gen.star(300)
        # orient everything out of the hub: max d+ = 300 >> rho ~ 1
        hub_out = 300
        rho = exact_density(DynamicGraph(n, edges))
        assert hub_out > (1 + EPS / 2) * rho + slack(n)
