"""Tests for checkpoint/restore of the balanced orientation."""

import pytest

from repro.core import BalancedOrientation
from repro.core.snapshot import from_json, restore, snapshot, to_json
from repro.errors import BatchError, InvariantViolation
from repro.graphs import generators as gen, streams


def build(H=4, seed=0):
    st = BalancedOrientation(H=H)
    for op in streams.churn(24, steps=20, batch_size=6, seed=seed):
        if op.kind == "insert":
            st.insert_batch(op.edges)
        else:
            st.delete_batch(op.edges)
    return st


class TestRoundtrip:
    def test_same_orientation_and_levels(self):
        def nonzero(levels):
            return {v: l for v, l in levels.items() if l}

        st = build()
        st2 = restore(snapshot(st))
        assert sorted(st.arcs()) == sorted(st2.arcs())
        assert nonzero(st.level) == nonzero(st2.level)
        st2.check_invariants()

    def test_restored_structure_accepts_updates(self):
        st = build()
        st2 = restore(snapshot(st))
        live = {(a, b) for (a, b, _c) in st2.tail_of}
        fresh = [(100, 101), (101, 102)]
        st2.insert_batch(fresh)
        st2.check_invariants()
        victim = next(iter(live))
        st2.delete_batch([victim])
        st2.check_invariants()

    def test_json_roundtrip(self):
        st = build(seed=5)
        st2 = from_json(to_json(st))
        assert sorted(st.arcs()) == sorted(st2.arcs())
        st2.check_invariants()

    def test_empty_structure(self):
        st = BalancedOrientation(H=3)
        st2 = restore(snapshot(st))
        assert st2.num_arcs() == 0
        st2.check_invariants()

    def test_multigraph_snapshot(self):
        st = BalancedOrientation(H=6)
        _, edges = gen.clique(6)
        st.insert_multi_batch([(u, v, c) for u, v in edges for c in range(2)])
        st2 = restore(snapshot(st))
        assert st2.num_arcs() == st.num_arcs()
        st2.check_invariants()


class TestCorruptedSnapshots:
    def test_inconsistent_levels_rejected(self):
        st = build()
        snap = snapshot(st)
        some_v = next(iter(snap["levels"]))
        snap["levels"][some_v] += 1
        with pytest.raises(InvariantViolation):
            restore(snap)

    def test_unbalanced_arc_set_rejected(self):
        # a star oriented entirely out of the hub: min(3, 5) = 3 exceeds
        # min(3, 0) + 1 = 1, so this is not a valid 3-balanced state
        snap = {
            "H": 3,
            "arcs": [(0, i, 0) for i in range(1, 6)],
            "levels": {0: 5, **{i: 0 for i in range(1, 6)}},
        }
        with pytest.raises(InvariantViolation):
            restore(snap)


class TestMalformedSnapshots:
    """Truncated/garbled snapshots raise BatchError naming the problem."""

    def test_not_a_mapping(self):
        with pytest.raises(BatchError, match="must be a mapping"):
            restore([1, 2, 3])

    def test_missing_keys(self):
        with pytest.raises(BatchError, match="missing key 'arcs'"):
            restore({"H": 3, "levels": {}})

    def test_non_integer_h(self):
        with pytest.raises(BatchError, match="H must be an integer"):
            restore({"H": "tall", "arcs": [], "levels": {}})

    def test_bad_arc_shape(self):
        with pytest.raises(BatchError, match="arc #0"):
            restore({"H": 3, "arcs": [(0, 1)], "levels": {}})

    def test_non_integer_arc_field(self):
        with pytest.raises(BatchError, match="arc #0"):
            restore({"H": 3, "arcs": [(0, "x", 0)], "levels": {}})

    def test_self_loop_arc(self):
        with pytest.raises(BatchError, match="self-loop"):
            restore({"H": 3, "arcs": [(2, 2, 0)], "levels": {2: 1}})

    def test_bad_levels_shape(self):
        with pytest.raises(BatchError, match="'levels'"):
            restore({"H": 3, "arcs": [], "levels": [1, 2]})

    def test_fractional_level(self):
        with pytest.raises(BatchError, match="level"):
            restore({"H": 3, "arcs": [], "levels": {0: 1.5}})

    def test_from_json_garbage(self):
        with pytest.raises(BatchError, match="not valid JSON"):
            from_json("{oops")

    def test_from_json_wrong_type(self):
        with pytest.raises(BatchError, match="JSON object"):
            from_json("[1, 2]")

    def test_from_json_truncated(self):
        with pytest.raises(BatchError, match="missing key"):
            from_json('{"H": 3, "arcs": []}')

    def test_restore_charges_cost_model(self):
        st = build()
        snap = snapshot(st)
        from repro.instrument.work_depth import CostModel

        cm = CostModel()
        restore(snap, cm=cm)
        assert cm.snapshot().work >= len(snap["arcs"])
