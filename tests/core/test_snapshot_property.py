"""Property test: snapshot/restore is exact under arbitrary schedules."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import BalancedOrientation
from repro.core.snapshot import from_json, restore, snapshot, to_json
from repro.graphs.graph import norm_edge


@st.composite
def schedules(draw):
    n = draw(st.integers(4, 14))
    steps = draw(st.integers(1, 6))
    live: set = set()
    ops = []
    for _ in range(steps):
        if draw(st.booleans()) or not live:
            fresh = set()
            for _ in range(18):
                u, v = draw(st.integers(0, n - 1)), draw(st.integers(0, n - 1))
                if u != v:
                    e = norm_edge(u, v)
                    if e not in live and e not in fresh:
                        fresh.add(e)
                if len(fresh) >= 6:
                    break
            if fresh:
                live |= fresh
                ops.append(("insert", tuple(sorted(fresh))))
        else:
            pool = sorted(live)
            k = draw(st.integers(1, len(pool)))
            victims = tuple(pool[:k])
            live -= set(victims)
            ops.append(("delete", victims))
    return ops


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(schedules(), st.integers(1, 6))
def test_snapshot_roundtrip_exact_after_any_schedule(ops, H):
    st_ = BalancedOrientation(H=H)
    for kind, edges in ops:
        if kind == "insert":
            st_.insert_batch(edges)
        else:
            st_.delete_batch(edges)
    recovered = restore(snapshot(st_))
    assert sorted(st_.arcs()) == sorted(recovered.arcs())
    recovered.check_invariants()
    # JSON path agrees too
    redecoded = from_json(to_json(st_))
    assert sorted(redecoded.arcs()) == sorted(st_.arcs())


@settings(max_examples=20, deadline=None)
@given(schedules())
def test_restored_structure_continues_identically(ops):
    """Replaying the same suffix on original vs restored gives equal arcs
    (the implementation is fully deterministic)."""
    if len(ops) < 2:
        return
    split = len(ops) // 2
    a = BalancedOrientation(H=4)
    for kind, edges in ops[:split]:
        (a.insert_batch if kind == "insert" else a.delete_batch)(edges)
    b = restore(snapshot(a))
    for kind, edges in ops[split:]:
        (a.insert_batch if kind == "insert" else a.delete_batch)(edges)
        (b.insert_batch if kind == "insert" else b.delete_batch)(edges)
    assert sorted(a.arcs()) == sorted(b.arcs())
    b.check_invariants()
