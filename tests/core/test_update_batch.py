"""Tests for the mixed-batch convenience API (deletions, then insertions)."""

import pytest

from repro.config import Constants
from repro.core import (
    BalancedOrientation,
    CorenessDecomposition,
    CorenessMonitor,
    DensityEstimator,
)
from repro.errors import BatchError
from repro.graphs import generators as gen


SMALL = Constants(sample_c=0.5, min_B=4, duplication_cap=8)


class TestBalancedUpdateBatch:
    def test_mixed_batch(self):
        st = BalancedOrientation(H=4)
        st.insert_batch([(0, 1), (1, 2), (2, 3)])
        st.update_batch(insertions=[(3, 4)], deletions=[(0, 1)])
        st.check_invariants()
        assert st.has_edge(3, 4)
        assert not st.has_edge(0, 1)

    def test_delete_then_reinsert_same_edge(self):
        st = BalancedOrientation(H=3)
        st.insert_batch([(5, 6)])
        st.update_batch(insertions=[(5, 6)], deletions=[(5, 6)])
        st.check_invariants()
        assert st.has_edge(5, 6)

    def test_insert_only_and_delete_only_forms(self):
        st = BalancedOrientation(H=3)
        st.update_batch(insertions=[(0, 1)])
        st.update_batch(deletions=[(0, 1)])
        st.check_invariants()
        assert st.num_arcs() == 0

    def test_empty_mixed_batch_is_noop(self):
        st = BalancedOrientation(H=3)
        st.update_batch()
        st.check_invariants()

    def test_journals_merged(self):
        st = BalancedOrientation(H=3)
        st.insert_batch([(0, 1), (1, 2)])
        st.update_batch(insertions=[(2, 3)], deletions=[(0, 1)])
        assert any(a[:2] in (((2, 3)), (3, 2)) or set(a[:2]) == {2, 3}
                   for a in st.last_inserted)
        assert any(set(a[:2]) == {0, 1} for a in st.last_deleted)

    def test_insertion_validated_after_deletions(self):
        st = BalancedOrientation(H=3)
        st.insert_batch([(0, 1)])
        # inserting a live edge still fails even in mixed form
        with pytest.raises(BatchError):
            st.update_batch(insertions=[(0, 1)], deletions=[])


class TestLadderUpdateBatch:
    def test_coreness_ladder(self):
        cd = CorenessDecomposition(16, eps=0.4, constants=SMALL)
        _, edges = gen.clique(6)
        cd.update_batch(insertions=edges)
        hi = cd.estimate(0)
        cd.update_batch(deletions=edges[:10])
        assert cd.estimate(0) <= hi

    def test_density_ladder(self):
        de = DensityEstimator(16, eps=0.4, constants=SMALL)
        de.update_batch(insertions=[(0, 1), (1, 2)])
        assert de.density_estimate() >= 1.0
        de.update_batch(deletions=[(0, 1)], insertions=[(2, 3)])
        de.check_invariants()

    def test_monitor(self):
        mon = CorenessMonitor(16, eps=0.4, constants=SMALL)
        _, edges = gen.cycle(8)
        mon.update_batch(insertions=edges)
        assert mon.graph.m == 8
        mon.update_batch(deletions=edges[:4])
        assert mon.graph.m == 4
