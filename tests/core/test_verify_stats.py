"""Tests for the deep verifier (fsck) and the stats introspection."""

import pytest

from repro.config import Constants
from repro.core import (
    BalancedOrientation,
    CorenessDecomposition,
    DensityEstimator,
    audit_coreness,
    audit_density,
    audit_orientation,
    replay_audit,
)
from repro.core.stats import coreness_stats, density_stats, orientation_stats
from repro.graphs import DynamicGraph, generators as gen, streams


SMALL = Constants(sample_c=0.5, min_B=4, duplication_cap=8)


def healthy_pair(seed=50):
    n, edges = gen.erdos_renyi(20, 50, seed=seed)
    st = BalancedOrientation(H=4)
    st.insert_batch(edges)
    return st, DynamicGraph(n, edges)


class TestAuditOrientation:
    def test_healthy_structure_passes(self):
        st, g = healthy_pair()
        report = audit_orientation(st, g)
        assert report.ok, report.render()

    def test_missing_edge_detected(self):
        st, g = healthy_pair()
        g.insert_batch([(30, 31)])  # graph moved on, structure did not
        report = audit_orientation(st, g)
        assert not report.ok
        assert any("absent" in f for f in report.findings)

    def test_phantom_edge_detected(self):
        st, g = healthy_pair()
        g.delete_batch([next(iter(g.edges))])
        report = audit_orientation(st, g)
        assert not report.ok
        assert any("phantom" in f for f in report.findings)

    def test_level_corruption_detected(self):
        st, g = healthy_pair()
        v = next(iter(st.level))
        st.level[v] += 3
        report = audit_orientation(st, g)
        assert not report.ok

    def test_render_mentions_status(self):
        st, g = healthy_pair()
        assert "[OK]" in audit_orientation(st, g).render()


class TestAuditEstimators:
    def test_coreness_band_passes_on_healthy(self):
        n, edges = gen.planted_dense(30, block=8, p_in=1.0, out_edges=20, seed=51)
        g = DynamicGraph(n, edges)
        cd = CorenessDecomposition(n, eps=0.4, constants=SMALL, seed=51)
        cd.insert_batch(edges)
        assert audit_coreness(cd, g).ok

    def test_coreness_band_catches_nonsense(self):
        n, edges = gen.clique(13)
        g = DynamicGraph(n, edges)
        cd = CorenessDecomposition(n, eps=0.4, constants=SMALL, seed=52)
        # estimator never saw the edges: estimates ~1 vs core 12
        report = audit_coreness(cd, g)
        assert not report.ok

    def test_density_band_passes_on_healthy(self):
        n, edges = gen.erdos_renyi(20, 50, seed=53)
        g = DynamicGraph(n, edges)
        de = DensityEstimator(n, eps=0.4, constants=SMALL, seed=53)
        de.insert_batch(edges)
        assert audit_density(de, g).ok


class TestReplayAudit:
    def test_churn_stream_clean(self):
        ops = streams.churn(20, steps=20, batch_size=5, seed=54)
        report = replay_audit(ops, H=4, constants=SMALL)
        assert report.ok, report.render()

    def test_deep_audit_runs(self):
        ops = streams.insert_only(gen.grid(4, 4)[1], 8)
        report = replay_audit(ops, H=4, constants=SMALL, deep_every=2)
        assert report.ok, report.render()


class TestStats:
    def test_orientation_stats_consistent(self):
        st, g = healthy_pair()
        stats = orientation_stats(st)
        assert stats.arcs == g.m
        assert stats.max_outdegree == st.max_outdegree()
        assert sum(stats.level_histogram.values()) == stats.vertices
        assert "BALANCED" in stats.render()

    def test_empty_structure_stats(self):
        st = BalancedOrientation(H=3)
        stats = orientation_stats(st)
        assert stats.arcs == 0
        assert stats.mean_outdegree == 0.0

    def test_ladder_stats(self):
        cd = CorenessDecomposition(16, eps=0.4, constants=SMALL)
        cd.insert_batch([(0, 1), (1, 2)])
        stats = coreness_stats(cd)
        assert stats.rungs == len(cd.rungs)
        assert "ladder" in stats.render()

    def test_density_stats(self):
        de = DensityEstimator(16, eps=0.4, constants=SMALL)
        de.insert_batch([(0, 1)])
        stats = density_stats(de)
        assert stats.first_active_rung is not None
