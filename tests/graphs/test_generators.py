"""Tests for the synthetic graph generators."""

import pytest

from repro.errors import ParameterError
from repro.graphs import DynamicGraph, generators as gen


def assert_simple(n, edges):
    seen = set()
    for u, v in edges:
        assert 0 <= u < v < n
        assert (u, v) not in seen
        seen.add((u, v))


class TestErdosRenyi:
    def test_exact_edge_count(self):
        n, edges = gen.erdos_renyi(50, 100, seed=1)
        assert len(edges) == 100
        assert_simple(n, edges)

    def test_deterministic_per_seed(self):
        assert gen.erdos_renyi(30, 60, seed=5) == gen.erdos_renyi(30, 60, seed=5)
        assert gen.erdos_renyi(30, 60, seed=5) != gen.erdos_renyi(30, 60, seed=6)

    def test_too_many_edges_rejected(self):
        with pytest.raises(ParameterError):
            gen.erdos_renyi(4, 7)


class TestBarabasiAlbert:
    def test_shape(self):
        n, edges = gen.barabasi_albert(100, 3, seed=2)
        assert n == 100
        assert_simple(n, edges)
        # each of the n - m_attach arrivals adds <= m_attach edges
        assert len(edges) <= 97 * 3

    def test_skewed_degrees(self):
        n, edges = gen.barabasi_albert(200, 2, seed=3)
        g = DynamicGraph(n, edges)
        degrees = sorted((g.degree(v) for v in range(n)), reverse=True)
        assert degrees[0] >= 3 * degrees[n // 2]

    def test_invalid_params(self):
        with pytest.raises(ParameterError):
            gen.barabasi_albert(5, 5)
        with pytest.raises(ParameterError):
            gen.barabasi_albert(5, 0)


class TestRmat:
    def test_shape(self):
        n, edges = gen.rmat(7, 200, seed=4)
        assert n == 128
        assert_simple(n, edges)
        assert len(edges) <= 200

    def test_invalid_probs(self):
        with pytest.raises(ParameterError):
            gen.rmat(4, 10, a=0.5, b=0.4, c=0.3)


class TestPlantedDense:
    def test_block_is_dense(self):
        n, edges = gen.planted_dense(100, block=12, p_in=1.0, out_edges=30, seed=5)
        g = DynamicGraph(n, edges)
        block_m = sum(1 for (u, v) in edges if u < 12 and v < 12)
        assert block_m == 12 * 11 // 2
        assert g.density_of(range(12)) == 11 / 2

    def test_out_edges_avoid_block_interior(self):
        n, edges = gen.planted_dense(50, block=10, p_in=0.0, out_edges=20, seed=6)
        assert all(not (u < 10 and v < 10) for u, v in edges)
        assert len(edges) == 20

    def test_block_too_big(self):
        with pytest.raises(ParameterError):
            gen.planted_dense(5, block=6)


class TestDeterministicFamilies:
    def test_clique(self):
        n, edges = gen.clique(5)
        assert n == 5 and len(edges) == 10

    def test_clique_offset(self):
        n, edges = gen.clique(3, offset=10)
        assert n == 13
        assert all(u >= 10 and v >= 10 for u, v in edges)

    def test_star(self):
        n, edges = gen.star(4)
        assert len(edges) == 4
        assert all(0 in e for e in edges)

    def test_path_cycle(self):
        assert len(gen.path(5)[1]) == 4
        assert len(gen.cycle(5)[1]) == 5
        with pytest.raises(ParameterError):
            gen.cycle(2)

    def test_grid(self):
        n, edges = gen.grid(3, 4)
        assert n == 12
        assert len(edges) == 3 * 3 + 2 * 4

    def test_complete_bipartite(self):
        n, edges = gen.complete_bipartite(3, 4)
        assert n == 7 and len(edges) == 12
        assert all(u < 3 <= v for u, v in edges)


class TestRandomForest:
    def test_is_forest(self):
        import networkx as nx

        n, edges = gen.random_forest(60, trees=4, seed=7)
        assert len(edges) == 60 - 4
        g = DynamicGraph(n, edges).to_networkx()
        assert nx.is_forest(g)

    def test_single_tree(self):
        n, edges = gen.random_forest(20, trees=1, seed=8)
        assert len(edges) == 19

    def test_invalid(self):
        with pytest.raises(ParameterError):
            gen.random_forest(5, trees=6)
