"""Tests for the ground-truth dynamic graph and batch validation."""

import pytest

from repro.errors import BatchError
from repro.graphs import DynamicGraph, norm_edge, normalize_batch


class TestNormEdge:
    def test_orders_endpoints(self):
        assert norm_edge(5, 2) == (2, 5)
        assert norm_edge(2, 5) == (2, 5)

    def test_rejects_self_loop(self):
        with pytest.raises(BatchError):
            norm_edge(3, 3)


class TestNormalizeBatch:
    def test_canonicalizes(self):
        assert normalize_batch([(3, 1), (2, 4)]) == [(1, 3), (2, 4)]

    def test_rejects_duplicates_in_batch(self):
        with pytest.raises(BatchError):
            normalize_batch([(1, 2), (2, 1)])


class TestInsertDelete:
    def test_insert_batch(self):
        g = DynamicGraph(5)
        g.insert_batch([(0, 1), (1, 2)])
        assert g.m == 2
        assert g.has_edge(1, 0)
        assert g.degree(1) == 2

    def test_insert_existing_raises(self):
        g = DynamicGraph(3, [(0, 1)])
        with pytest.raises(BatchError):
            g.insert_batch([(1, 0)])

    def test_delete_batch(self):
        g = DynamicGraph(3, [(0, 1), (1, 2)])
        g.delete_batch([(0, 1)])
        assert g.m == 1
        assert not g.has_edge(0, 1)

    def test_delete_absent_raises(self):
        g = DynamicGraph(3)
        with pytest.raises(BatchError):
            g.delete_batch([(0, 1)])

    def test_n_grows_with_vertices(self):
        g = DynamicGraph(0)
        g.insert_batch([(10, 20)])
        assert g.n == 21

    def test_negative_n_rejected(self):
        with pytest.raises(BatchError):
            DynamicGraph(-1)


class TestQueries:
    def test_neighbors(self):
        g = DynamicGraph(4, [(0, 1), (0, 2)])
        assert g.neighbors(0) == {1, 2}
        assert g.neighbors(3) == set()

    def test_touched_vertices(self):
        g = DynamicGraph(10, [(1, 2)])
        assert g.touched_vertices() == {1, 2}

    def test_copy_is_independent(self):
        g = DynamicGraph(3, [(0, 1)])
        h = g.copy()
        h.insert_batch([(1, 2)])
        assert g.m == 1 and h.m == 2

    def test_subgraph(self):
        g = DynamicGraph(4, [(0, 1), (1, 2), (2, 3)])
        s = g.subgraph([1, 2])
        assert s.m == 1
        assert s.has_edge(1, 2)

    def test_density_of(self):
        g = DynamicGraph(4, [(0, 1), (1, 2), (0, 2)])
        assert g.density_of([0, 1, 2]) == 1.0
        with pytest.raises(BatchError):
            g.density_of([])

    def test_to_networkx_roundtrip(self):
        g = DynamicGraph(4, [(0, 1), (2, 3)])
        nxg = g.to_networkx()
        assert nxg.number_of_edges() == 2
        assert nxg.number_of_nodes() == 4
