"""Tests for batch-update streams: every stream must be replayable."""

import pytest

from repro.errors import ParameterError
from repro.graphs import DynamicGraph, generators as gen, streams


def replayable(ops):
    """Replaying must never raise (inserts absent, deletes present)."""
    g = DynamicGraph(0)
    streams.replay(ops, g)
    return g


class TestInsertOnly:
    def test_chunking(self):
        _, edges = gen.path(10)
        ops = streams.insert_only(edges, 4)
        assert [op.size for op in ops] == [4, 4, 1]
        assert all(op.kind == "insert" for op in ops)
        replayable(ops)

    def test_bad_batch_size(self):
        with pytest.raises(ParameterError):
            streams.insert_only([(0, 1)], 0)


class TestInsertThenDelete:
    def test_ends_empty(self):
        _, edges = gen.clique(6)
        g = replayable(streams.insert_then_delete(edges, 5, seed=1))
        assert g.m == 0

    def test_total_ops(self):
        _, edges = gen.clique(5)
        ops = streams.insert_then_delete(edges, 3)
        inserts = sum(op.size for op in ops if op.kind == "insert")
        deletes = sum(op.size for op in ops if op.kind == "delete")
        assert inserts == deletes == 10


class TestSlidingWindow:
    def test_window_bounds_live_edges(self):
        _, edges = gen.erdos_renyi(50, 120, seed=2)
        ops = streams.sliding_window(edges, window=3, batch_size=10)
        g = DynamicGraph(0)
        max_live = 0
        for op in ops:
            if op.kind == "insert":
                g.insert_batch(op.edges)
            else:
                g.delete_batch(op.edges)
            max_live = max(max_live, g.m)
        assert max_live <= 4 * 10  # window + the just-inserted batch

    def test_invalid_window(self):
        with pytest.raises(ParameterError):
            streams.sliding_window([(0, 1)], window=0, batch_size=1)


class TestChurn:
    def test_replayable(self):
        g = replayable(streams.churn(30, steps=50, batch_size=7, seed=3))
        assert g.m >= 0

    def test_contains_deletes(self):
        ops = streams.churn(30, steps=60, batch_size=5, insert_bias=0.4, seed=4)
        assert any(op.kind == "delete" for op in ops)

    def test_deterministic(self):
        a = streams.churn(20, 20, 4, seed=9)
        b = streams.churn(20, 20, 4, seed=9)
        assert a == b


class TestAdversarial:
    def test_sawtooth_replayable_and_cyclic(self):
        ops = streams.sawtooth_clique(6, repeats=3, small_batch=2)
        g = replayable(ops)
        assert g.m == 0
        big_inserts = [op for op in ops if op.kind == "insert"]
        assert len(big_inserts) == 3
        assert big_inserts[0].size == 15

    def test_flip_flop(self):
        _, edges = gen.path(6)
        g = replayable(streams.flip_flop(edges, 4))
        assert g.m == 0

    def test_density_ramp_monotone(self):
        ops = streams.density_ramp(40, block=10, levels=4, per_level=8, seed=5)
        assert all(op.kind == "insert" for op in ops)
        g = replayable(ops)
        assert g.m == sum(op.size for op in ops)

    def test_density_ramp_block_cap(self):
        ops = streams.density_ramp(20, block=5, levels=100, per_level=3, seed=6)
        assert sum(op.size for op in ops) == 10  # all C(5,2) block edges
