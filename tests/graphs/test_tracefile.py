"""Tests for the on-disk trace format."""

import pytest

from repro.errors import BatchError
from repro.graphs import generators as gen, streams
from repro.graphs.streams import BatchOp
from repro.graphs.tracefile import read_trace, validate_trace, write_trace


class TestRoundtrip:
    def test_write_read(self, tmp_path):
        _, edges = gen.clique(5)
        ops = streams.insert_then_delete(edges, 4, seed=1)
        path = tmp_path / "t.txt"
        count = write_trace(ops, path)
        assert count == len(ops)
        assert read_trace(path) == ops

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.txt"
        write_trace([], path)
        assert read_trace(path) == []

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "c.txt"
        path.write_text("# header\n\nI 0 1\n  # mid\nD 1 0\n")
        ops = read_trace(path)
        assert [op.kind for op in ops] == ["insert", "delete"]
        assert ops[0].edges == ((0, 1),)

    def test_edges_canonicalized(self, tmp_path):
        path = tmp_path / "n.txt"
        path.write_text("I 5 2\n")
        assert read_trace(path)[0].edges == ((2, 5),)


class TestErrors:
    def test_unknown_kind(self, tmp_path):
        path = tmp_path / "x.txt"
        path.write_text("Q 0 1\n")
        with pytest.raises(BatchError):
            read_trace(path)

    def test_odd_endpoints(self, tmp_path):
        path = tmp_path / "x.txt"
        path.write_text("I 0 1 2\n")
        with pytest.raises(BatchError):
            read_trace(path)

    def test_non_integer(self, tmp_path):
        path = tmp_path / "x.txt"
        path.write_text("I a b\n")
        with pytest.raises(BatchError):
            read_trace(path)


class TestValidate:
    def test_valid_stream_reports_n(self):
        ops = [BatchOp("insert", ((0, 9),)), BatchOp("delete", ((0, 9),))]
        assert validate_trace(ops) == 10

    def test_insert_live_edge_rejected(self):
        ops = [BatchOp("insert", ((0, 1),)), BatchOp("insert", ((0, 1),))]
        with pytest.raises(BatchError):
            validate_trace(ops)

    def test_delete_absent_rejected(self):
        with pytest.raises(BatchError):
            validate_trace([BatchOp("delete", ((0, 1),))])

    def test_duplicate_within_batch_rejected(self):
        with pytest.raises(BatchError):
            validate_trace([BatchOp("insert", ((0, 1), (0, 1)))])
