"""Tests for the on-disk trace format."""

import pytest

from repro.errors import BatchError, TraceError
from repro.graphs import generators as gen, streams
from repro.graphs.streams import BatchOp
from repro.graphs.tracefile import (
    TraceWriter,
    iter_trace,
    read_trace,
    recover_trace,
    scan_trace,
    validate_trace,
    write_stream,
    write_trace,
)


class TestRoundtrip:
    def test_write_read(self, tmp_path):
        _, edges = gen.clique(5)
        ops = streams.insert_then_delete(edges, 4, seed=1)
        path = tmp_path / "t.txt"
        count = write_trace(ops, path)
        assert count == len(ops)
        assert read_trace(path) == ops

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.txt"
        write_trace([], path)
        assert read_trace(path) == []

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "c.txt"
        path.write_text("# header\n\nI 0 1\n  # mid\nD 1 0\n")
        ops = read_trace(path)
        assert [op.kind for op in ops] == ["insert", "delete"]
        assert ops[0].edges == ((0, 1),)

    def test_edges_canonicalized(self, tmp_path):
        path = tmp_path / "n.txt"
        path.write_text("I 5 2\n")
        assert read_trace(path)[0].edges == ((2, 5),)


class TestErrors:
    def test_unknown_kind(self, tmp_path):
        path = tmp_path / "x.txt"
        path.write_text("Q 0 1\n")
        with pytest.raises(BatchError):
            read_trace(path)

    def test_odd_endpoints(self, tmp_path):
        path = tmp_path / "x.txt"
        path.write_text("I 0 1 2\n")
        with pytest.raises(BatchError):
            read_trace(path)

    def test_non_integer(self, tmp_path):
        path = tmp_path / "x.txt"
        path.write_text("I a b\n")
        with pytest.raises(BatchError):
            read_trace(path)


class TestValidate:
    def test_valid_stream_reports_n(self):
        ops = [BatchOp("insert", ((0, 9),)), BatchOp("delete", ((0, 9),))]
        assert validate_trace(ops) == 10

    def test_insert_live_edge_rejected(self):
        ops = [BatchOp("insert", ((0, 1),)), BatchOp("insert", ((0, 1),))]
        with pytest.raises(BatchError):
            validate_trace(ops)

    def test_delete_absent_rejected(self):
        with pytest.raises(BatchError):
            validate_trace([BatchOp("delete", ((0, 1),))])

    def test_duplicate_within_batch_rejected(self):
        with pytest.raises(BatchError):
            validate_trace([BatchOp("insert", ((0, 1), (0, 1)))])


class TestIntegrityFooter:
    """The checksum footer catches truncation and corruption (TraceError)."""

    def _ops(self):
        _, edges = gen.clique(5)
        return streams.insert_then_delete(edges, 4, seed=1)

    def test_sealed_roundtrip(self, tmp_path):
        path = tmp_path / "sealed.txt"
        ops = self._ops()
        write_trace(ops, path)
        assert "# repro-trace-end" in path.read_text()
        assert read_trace(path, strict=True) == ops

    def test_footerless_legacy_still_reads(self, tmp_path):
        path = tmp_path / "legacy.txt"
        write_trace(self._ops(), path, footer=False)
        assert read_trace(path) == self._ops()
        with pytest.raises(TraceError, match="missing end-of-trace footer"):
            read_trace(path, strict=True)

    def test_truncated_body_detected(self, tmp_path):
        path = tmp_path / "trunc.txt"
        write_trace(self._ops(), path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[1:]) + "\n")  # drop the first batch
        with pytest.raises(TraceError, match="CRC-32"):
            read_trace(path)

    def test_flipped_byte_detected(self, tmp_path):
        path = tmp_path / "flip.txt"
        write_trace(self._ops(), path)
        text = path.read_text()
        body_end = text.index("# repro-trace-end")
        corrupted = text[: body_end - 3] + ("9" if text[body_end - 3] != "9" else "8") + text[body_end - 2 :]
        path.write_text(corrupted)
        with pytest.raises(TraceError):
            read_trace(path)

    def test_malformed_footer_detected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("I 0 1\n# repro-trace-end batches=x crc32=zz\n")
        with pytest.raises(TraceError, match="malformed"):
            read_trace(path)

    def test_content_after_footer_detected(self, tmp_path):
        path = tmp_path / "tail.txt"
        write_trace(self._ops(), path)
        with open(path, "a") as fh:
            fh.write("I 9 10\n")
        with pytest.raises(TraceError, match="after end-of-trace"):
            read_trace(path)

    def test_empty_sealed_trace(self, tmp_path):
        path = tmp_path / "empty.txt"
        write_trace([], path)
        assert read_trace(path, strict=True) == []


class TestTraceWriter:
    def test_incremental_then_seal(self, tmp_path):
        _, edges = gen.clique(4)
        ops = streams.insert_only(edges, 3)
        path = tmp_path / "wal.txt"
        with TraceWriter(path) as writer:
            for op in ops:
                writer.append(op)
            # unsealed mid-stream: tolerant read works, strict refuses
            assert read_trace(path) == ops
            with pytest.raises(TraceError):
                read_trace(path, strict=True)
        assert read_trace(path, strict=True) == ops

    def test_append_after_seal_rejected(self, tmp_path):
        path = tmp_path / "done.txt"
        writer = TraceWriter(path)
        writer.append(BatchOp("insert", ((0, 1),)))
        writer.close()
        writer.close()  # idempotent
        with pytest.raises(TraceError, match="sealed"):
            writer.append(BatchOp("insert", ((1, 2),)))

    def test_writer_matches_write_trace(self, tmp_path):
        _, edges = gen.clique(4)
        ops = streams.insert_then_delete(edges, 2, seed=0)
        a, b = tmp_path / "a.txt", tmp_path / "b.txt"
        write_trace(ops, a)
        with TraceWriter(b) as writer:
            for op in ops:
                writer.append(op)
        assert a.read_text() == b.read_text()


class TestSealedAppend:
    """Re-opening a sealed WAL in append mode (the service-restart move).

    Regression for the sealed-trace append corruption: a plain re-open
    used to write batches *after* the integrity footer, which the readers
    then misparsed.  Append mode now detects the seal and either unseals
    (strip footer, resume CRC) or refuses with a clear TraceError.
    """

    OPS = [
        BatchOp("insert", ((0, 1), (1, 2))),
        BatchOp("insert", ((0, 2),)),
        BatchOp("delete", ((0, 1),)),
    ]

    def _sealed(self, path):
        with TraceWriter(path) as writer:
            for op in self.OPS[:2]:
                writer.append(op)

    def test_unseal_resumes_sealed_trace(self, tmp_path):
        path = tmp_path / "wal.trace"
        self._sealed(path)
        with TraceWriter(path, append=True) as writer:
            assert writer.batches == 2  # resumed, not restarted
            writer.append(self.OPS[2])
        # the re-sealed file is one coherent trace: strict read, correct
        # batch count, CRC covering old + new body alike
        assert read_trace(path, strict=True) == self.OPS
        assert list(iter_trace(path, strict=True)) == self.OPS

    def test_unseal_strips_footer_in_place(self, tmp_path, monkeypatch):
        """Regression: unsealing used to rewrite the whole file through a
        truncate-to-zero ``open(path, 'wb')``, leaving a kill -9 window in
        which every previously acked batch was gone (and state recovery
        then discarded the checkpoint too).  The footer is strictly a
        suffix, so unsealing must never open the WAL in a truncating
        mode — it strips the footer with one in-place truncate."""
        import builtins

        path = tmp_path / "wal.trace"
        self._sealed(path)
        real_open = builtins.open

        def guarded(file, mode="r", *args, **kwargs):
            if str(file) == str(path) and any(c in str(mode) for c in "wx"):
                raise AssertionError(
                    f"unseal opened the WAL in truncating mode {mode!r} — "
                    "a crash mid-rewrite would lose acked batches"
                )
            return real_open(file, mode, *args, **kwargs)

        monkeypatch.setattr(builtins, "open", guarded)
        writer = TraceWriter(path, append=True)
        monkeypatch.undo()
        # the durable state right after the unseal (a crash point) is the
        # exact acked body, footer physically gone: a valid unsealed WAL.
        assert read_trace(path) == self.OPS[:2]
        assert not path.read_text().rstrip().splitlines()[-1].startswith("#")
        writer.append(self.OPS[2])
        writer.close()
        assert read_trace(path, strict=True) == self.OPS
        path = tmp_path / "wal.trace"
        self._sealed(path)
        with pytest.raises(TraceError, match="sealed"):
            TraceWriter(path, append=True, unseal=False)
        # the refusal must not have touched the file
        assert read_trace(path, strict=True) == self.OPS[:2]

    def test_resumes_unsealed_crash_log(self, tmp_path):
        # a crashed writer leaves no footer; append mode resumes in place
        path = tmp_path / "wal.trace"
        write_trace(self.OPS[:2], path, footer=False)
        with TraceWriter(path, append=True) as writer:
            assert writer.batches == 2
            writer.append(self.OPS[2])
        assert read_trace(path, strict=True) == self.OPS

    def test_append_to_missing_file_starts_fresh(self, tmp_path):
        path = tmp_path / "new.trace"
        with TraceWriter(path, append=True) as writer:
            writer.append(self.OPS[0])
        assert read_trace(path, strict=True) == self.OPS[:1]

    def test_unseal_refuses_corrupt_body(self, tmp_path):
        path = tmp_path / "wal.trace"
        self._sealed(path)
        lines = path.read_text().splitlines()
        lines[0] = "I 7 8"  # body no longer matches the footer CRC
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceError, match="CRC"):
            TraceWriter(path, append=True)

    def test_default_mode_still_truncates(self, tmp_path):
        path = tmp_path / "wal.trace"
        self._sealed(path)
        with TraceWriter(path) as writer:
            writer.append(self.OPS[2])
        assert read_trace(path, strict=True) == self.OPS[2:]

    def test_sync_mode_flushes_durably(self, tmp_path):
        path = tmp_path / "wal.trace"
        writer = TraceWriter(path, sync=True)
        writer.append(self.OPS[0])
        # acked-before-sealed: the batch is on disk before close()
        assert read_trace(path) == self.OPS[:1]
        writer.close()


class TestStreaming:
    """The out-of-core surface: iter_trace / scan_trace / write_stream."""

    def _ops(self):
        _, edges = gen.clique(6)
        return streams.insert_then_delete(edges, 4, seed=2)

    def test_iter_matches_read(self, tmp_path):
        path = tmp_path / "t.txt"
        ops = self._ops()
        write_trace(ops, path)
        assert list(iter_trace(path)) == ops
        assert list(iter_trace(path, strict=True)) == ops

    def test_tiny_chunks_cross_line_boundaries(self, tmp_path):
        # chunk_bytes=1 forces every line to be reassembled byte by byte
        path = tmp_path / "t.txt"
        ops = self._ops()
        write_trace(ops, path)
        assert list(iter_trace(path, strict=True, chunk_bytes=1)) == ops

    def test_incremental_crc_detects_corruption(self, tmp_path):
        path = tmp_path / "t.txt"
        write_trace(self._ops(), path)
        text = path.read_text()
        # flip one digit of the body (keeping every line parseable) so the
        # incremental CRC fold — not the line parser — must catch it
        pos = next(i for i, ch in enumerate(text) if ch.isdigit())
        flip = "9" if text[pos] != "9" else "8"
        path.write_text(text[:pos] + flip + text[pos + 1 :])
        with pytest.raises(TraceError, match="CRC-32"):
            list(iter_trace(path))

    def test_strict_unsealed_raises_at_exhaustion(self, tmp_path):
        path = tmp_path / "t.txt"
        write_trace(self._ops(), path, footer=False)
        assert list(iter_trace(path)) == self._ops()
        with pytest.raises(TraceError, match="missing end-of-trace footer"):
            list(iter_trace(path, strict=True))

    def test_content_after_footer_detected(self, tmp_path):
        path = tmp_path / "t.txt"
        write_trace(self._ops(), path)
        with open(path, "a") as fh:
            fh.write("I 9 10\n")
        with pytest.raises(TraceError, match="after end-of-trace"):
            list(iter_trace(path))

    def test_scan_reports_shape(self, tmp_path):
        path = tmp_path / "t.txt"
        ops = [
            BatchOp("insert", ((0, 1), (1, 2), (2, 3))),
            BatchOp("delete", ((1, 2),)),
            BatchOp("insert", ((4, 7),)),
        ]
        write_trace(ops, path)
        info = scan_trace(path, strict=True)
        assert info.batches == 3
        assert info.edge_updates == 5
        assert info.vertices == 8  # max endpoint 7 -> universe 0..7
        assert info.max_live_edges == 3

    def test_scan_rejects_invalid_stream(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("I 0 1\nD 2 3\n")
        with pytest.raises(BatchError):
            scan_trace(path)

    def test_write_stream_from_generator(self, tmp_path):
        path = tmp_path / "t.txt"
        ops = self._ops()
        writer = write_stream(iter(ops), path)
        assert writer.batches == len(ops)
        assert read_trace(path, strict=True) == ops

    def test_iter_is_lazy(self, tmp_path):
        # Draining one batch must not require parsing the whole file.
        path = tmp_path / "t.txt"
        write_trace(self._ops(), path)
        it = iter_trace(path)
        first = next(it)
        assert first == self._ops()[0]
        it.close()

class TestRecoverTrace:
    """The torn-tail-tolerant WAL reader behind service restarts."""

    OPS = [
        BatchOp("insert", ((0, 1), (1, 2))),
        BatchOp("insert", ((2, 3),)),
        BatchOp("delete", ((1, 2),)),
    ]

    def test_missing_file(self, tmp_path):
        assert recover_trace(tmp_path / "nope.txt") == ([], 0)

    def test_sealed_file_loads_whole(self, tmp_path):
        path = tmp_path / "t.txt"
        write_trace(self.OPS, path)
        ops, good = recover_trace(path)
        assert ops == self.OPS
        assert good == path.stat().st_size

    def test_unsealed_clean_tail(self, tmp_path):
        path = tmp_path / "t.txt"
        write_trace(self.OPS, path, footer=False)
        ops, good = recover_trace(path)
        assert ops == self.OPS
        assert good == path.stat().st_size

    def test_torn_final_line_without_newline_is_dropped(self, tmp_path):
        path = tmp_path / "t.txt"
        write_trace(self.OPS, path, footer=False)
        clean = path.stat().st_size
        with open(path, "a") as fh:
            fh.write("I 7 8 9")  # killed mid-append: no newline
        ops, good = recover_trace(path)
        assert ops == self.OPS
        assert good == clean

    def test_torn_garbage_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "t.txt"
        write_trace(self.OPS, path, footer=False)
        clean = path.stat().st_size
        with open(path, "a") as fh:
            fh.write("garbage that is no batch line\n")
        ops, good = recover_trace(path)
        assert ops == self.OPS
        assert good == clean

    def test_mid_file_corruption_still_raises(self, tmp_path):
        """Only the *tail* may be forgiven: bad bytes with real batches
        after them mean the log cannot be trusted."""
        path = tmp_path / "t.txt"
        write_trace(self.OPS, path, footer=False)
        lines = path.read_text().splitlines(keepends=True)
        idx = next(i for i, l in enumerate(lines) if not l.startswith("#"))
        lines[idx] = "garbage in the middle\n"
        path.write_text("".join(lines))
        with pytest.raises(BatchError):
            recover_trace(path)

    def test_corrupt_sealed_file_still_raises(self, tmp_path):
        path = tmp_path / "t.txt"
        write_trace(self.OPS, path)
        text = path.read_text().replace("I 0 1", "I 0 9", 1)
        path.write_text(text)
        with pytest.raises(TraceError):
            recover_trace(path)
