"""Telemetry must not perturb the cost model — armed == disarmed, bitwise.

The acceptance property of the whole subsystem: replaying the same
update stream with a tracer armed produces *exactly* the same work,
depth, and counter values as a disarmed replay, while the phase tree
accounts for every unit of that work (per-phase self work sums to the
cost model's total).  Exercised end to end through the real structures,
including a fault-injected recovery path.
"""

from repro.core.balanced import BalancedOrientation
from repro.core.coreness import CorenessDecomposition
from repro.graphs import generators as gen, streams
from repro.instrument import trace
from repro.instrument.telemetry import Tracer
from repro.instrument.work_depth import CostModel
from repro.resilience.faults import FaultInjector, FaultSpec, injecting
from repro.resilience.recovery import RecoveryManager


def apply_ops(structure, ops):
    for op in ops:
        if op.kind == "insert":
            structure.insert_batch(op.edges)
        else:
            structure.delete_batch(op.edges)


def cost_view(cm):
    return (cm.work, cm.depth, dict(cm.counters))


class TestBitIdentity:
    def run_coreness(self, armed):
        cm = CostModel()
        cd = CorenessDecomposition(32, eps=0.5, cm=cm, seed=4)
        ops = streams.churn(32, steps=10, batch_size=8, seed=11)
        if armed:
            tracer = Tracer(cm)
            with trace.tracing(tracer):
                apply_ops(cd, ops)
            return cm, tracer
        apply_ops(cd, ops)
        return cm, None

    def test_coreness_ladder_armed_equals_disarmed(self):
        cm_armed, tracer = self.run_coreness(armed=True)
        cm_bare, _ = self.run_coreness(armed=False)
        assert cost_view(cm_armed) == cost_view(cm_bare)
        assert tracer.frame_mismatches == 0

    def test_phase_tree_sums_to_total(self):
        cm, tracer = self.run_coreness(armed=True)
        assert tracer.root.work == cm.work
        assert tracer.root.total_self_work() == tracer.root.work

    def test_balanced_armed_equals_disarmed(self):
        def run(armed):
            _, edges = gen.erdos_renyi(40, 160, seed=9)
            cm = CostModel()
            st = BalancedOrientation(H=4, cm=cm)
            ops = list(streams.insert_then_delete(edges, 24, seed=9))
            if armed:
                with trace.tracing(Tracer(cm)):
                    apply_ops(st, ops)
            else:
                apply_ops(st, ops)
            return cm

        assert cost_view(run(True)) == cost_view(run(False))


class TestRecoveryUnderTracing:
    OPS = streams.churn(20, steps=12, batch_size=5, seed=13)

    def run_recovery(self, armed):
        cm = CostModel()
        st = BalancedOrientation(4, cm=cm)
        mgr = RecoveryManager(st, checkpoint_every=5)
        inj = FaultInjector([FaultSpec("tokens.drop.phase", hit=2)])
        events = []
        outcomes = []
        work_at_arm = cm.work  # manager construction charges pre-arming work
        if armed:
            tracer = Tracer(cm, sinks=[events.append])
            with trace.tracing(tracer):
                with injecting(inj):
                    outcomes = [mgr.apply(op) for op in self.OPS]
        else:
            tracer = None
            with injecting(inj):
                outcomes = [mgr.apply(op) for op in self.OPS]
        return cm, mgr, tracer, events, outcomes, work_at_arm

    def test_guarded_rollback_mid_phase_keeps_tracer_consistent(self):
        cm, mgr, tracer, events, outcomes, work_at_arm = self.run_recovery(armed=True)
        assert "rollback" in outcomes
        assert tracer.open_spans == 0
        # the root holds exactly the since-arming delta (audit() would
        # charge further, so compare before calling it)
        assert tracer.root.work == cm.work - work_at_arm
        assert tracer.root.total_self_work() == tracer.root.work
        assert mgr.audit().ok
        names = {e["name"] for e in events}
        assert "recovery.escalate" in names
        assert "recovery.outcome" in names
        escalations = [e for e in events if e["name"] == "recovery.escalate"]
        assert any(e["tier"] == "rollback" for e in escalations)

    def test_recovery_outcomes_unchanged_by_tracing(self):
        armed_outcomes = self.run_recovery(armed=True)[4]
        bare_outcomes = self.run_recovery(armed=False)[4]
        assert armed_outcomes == bare_outcomes

    def test_recovery_cost_unchanged_by_tracing(self):
        cm_armed = self.run_recovery(armed=True)[0]
        cm_bare = self.run_recovery(armed=False)[0]
        assert cost_view(cm_armed) == cost_view(cm_bare)
