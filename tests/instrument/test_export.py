"""Sinks and exports: JSONL, Prometheus text, phase tree, BENCH files."""

import json

import pytest

from repro.errors import ParameterError
from repro.instrument import trace
from repro.instrument.export import (
    JsonlSink,
    REQUIRED_BENCH_KEYS,
    bench_payload,
    parse_prometheus,
    phase_shares,
    prometheus_text,
    read_jsonl,
    render_phase_tree,
    validate_bench_payload,
    write_bench_json,
)
from repro.instrument.metrics import BatchTimer
from repro.instrument.telemetry import MetricsRegistry, Tracer
from repro.instrument.work_depth import CostModel


def small_run(sink=None):
    cm = CostModel()
    tr = Tracer(cm, sinks=[sink] if sink else [])
    with trace.tracing(tr):
        with trace.span("batch", detail={"index": 0}):
            with trace.span("game.drop"):
                cm.charge(work=30, depth=3)
            with trace.span("game.push"):
                cm.charge(work=10, depth=2)
        trace.event("progress", batch=1, batches=1, work=cm.work, depth=cm.depth)
    return cm, tr


class TestJsonl:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(path) as sink:
            _cm, _tr = small_run(sink)
        events = read_jsonl(path)
        assert len(events) == sink.events_written == 4
        kinds = [(e["type"], e["name"]) for e in events]
        assert ("event", "progress") in kinds
        assert kinds.count(("span", "batch")) == 1
        batch = next(e for e in events if e["name"] == "batch")
        assert batch["work"] == 40 and batch["detail"] == {"index": 0}
        assert batch["path"] == ["batch"]
        # spans exit inner-first, and seq is monotonically increasing
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs)
        assert events[0]["name"] == "game.drop"

    def test_bad_line_raises_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ParameterError, match="bad.jsonl:2"):
            read_jsonl(path)


class TestPrometheus:
    def make_registry(self):
        reg = MetricsRegistry()
        reg.counter("repro_batches_total", kind="insert").inc(3)
        reg.counter("repro_batches_total", kind="delete").inc(1)
        reg.gauge("repro_last_batch_size").set(16)
        h = reg.histogram("repro_batch_depth")
        for v in (1, 2, 5, 900):
            h.observe(v)
        return reg

    def test_round_trip(self):
        reg = self.make_registry()
        text = prometheus_text(reg)
        samples = parse_prometheus(text)
        assert samples[("repro_batches_total", (("kind", "insert"),))] == 3
        assert samples[("repro_last_batch_size", ())] == 16
        assert samples[("repro_batch_depth_count", ())] == 4
        assert samples[("repro_batch_depth_sum", ())] == 908
        # cumulative buckets end at the observation count
        inf_key = ("repro_batch_depth_bucket", (("le", "+Inf"),))
        assert samples[inf_key] == 4

    def test_type_lines_present(self):
        text = prometheus_text(self.make_registry())
        assert "# TYPE repro_batches_total counter" in text
        assert "# TYPE repro_batch_depth histogram" in text

    def test_histogram_buckets_are_cumulative(self):
        text = prometheus_text(self.make_registry())
        samples = parse_prometheus(text)
        buckets = sorted(
            (float(dict(labels)["le"]), v)
            for (name, labels), v in samples.items()
            if name == "repro_batch_depth_bucket" and dict(labels)["le"] != "+Inf"
        )
        counts = [v for _le, v in buckets]
        assert counts == sorted(counts)

    def test_help_and_type_once_per_family(self):
        # two children of repro_batches_total share one HELP + one TYPE,
        # emitted immediately before the family's first sample
        text = prometheus_text(self.make_registry())
        lines = text.splitlines()
        assert (
            sum(1 for l in lines if l.startswith("# HELP repro_batches_total "))
            == 1
        )
        assert lines.count("# TYPE repro_batches_total counter") == 1
        help_idx = next(
            i for i, l in enumerate(lines)
            if l.startswith("# HELP repro_batches_total")
        )
        assert lines[help_idx + 1] == "# TYPE repro_batches_total counter"
        assert lines[help_idx + 2].startswith("repro_batches_total{")
        # every family on the page has a HELP line
        families = {
            l.split("{")[0].split(" ")[0].rsplit("_bucket", 1)[0]
            for l in lines
            if l and not l.startswith("#")
        }
        helped = {l.split(" ")[2] for l in lines if l.startswith("# HELP")}
        for fam in ("repro_batches_total", "repro_last_batch_size",
                    "repro_batch_depth"):
            assert fam in families and fam in helped

    def test_describe_overrides_builtin_help(self):
        reg = self.make_registry()
        reg.describe("repro_batches_total", "my custom help")
        text = prometheus_text(reg)
        assert "# HELP repro_batches_total my custom help" in text
        # unknown families still get a generated HELP line
        reg.counter("repro_custom_thing_total").inc()
        text = prometheus_text(reg)
        assert "# HELP repro_custom_thing_total repro_custom_thing_total (counter)" in text

    def test_label_escaping_round_trips(self):
        reg = MetricsRegistry()
        tricky = 'quote " backslash \\ newline \n end'
        reg.counter("repro_scenario_batches_total", scenario=tricky).inc(7)
        text = prometheus_text(reg)
        assert "\n" not in text.split("repro_scenario_batches_total{", 1)[1].split("}")[0]
        samples = parse_prometheus(text)
        assert samples[
            ("repro_scenario_batches_total", (("scenario", tricky),))
        ] == 7


class TestPhaseTree:
    def test_render_rows_sum_to_total(self):
        cm, tr = small_run()
        report = render_phase_tree(tr.root)
        lines = report.splitlines()[2:]
        work_col = [int(line.split()[-5]) for line in lines]
        # leaf rows + (self) rows partition the total exactly
        leaf_sum = sum(
            w
            for line, w in zip(lines, work_col)
            if "(self" in line or line.strip().startswith(("game.",))
        )
        assert leaf_sum == tr.root.work == cm.work == 40

    def test_phase_shares_flatten(self):
        _cm, tr = small_run()
        shares = phase_shares(tr.root)
        assert shares["run"]["share"] == 1.0
        assert shares["run/batch/game.drop"]["work"] == 30
        assert shares["run/batch/game.drop"]["share"] == pytest.approx(0.75)
        assert sum(s["self_share"] for s in shares.values()) == pytest.approx(1.0)

    def test_min_share_prunes_into_self_row(self):
        _cm, tr = small_run()
        report = render_phase_tree(tr.root, min_share=0.5)
        assert "game.drop" in report  # 75% — kept
        assert "game.push" not in report  # 25% — pruned
        assert "pruned" in report


class TestBench:
    def make_series(self):
        cm = CostModel()
        timer = BatchTimer(cm)
        for i in range(4):
            with timer.batch("insert", 8):
                cm.charge(work=80 * (i + 1), depth=5 + i)
        return timer.series

    def test_payload_has_required_schema(self):
        payload = bench_payload("smoke", self.make_series())
        assert validate_bench_payload(payload) == []
        for key in REQUIRED_BENCH_KEYS:
            assert key in payload
        assert payload["batches"] == 4
        assert payload["edge_updates"] == 32
        assert payload["work_per_edge"]["max"] == 40.0

    def test_validate_reports_missing_keys(self):
        payload = bench_payload("smoke", self.make_series())
        del payload["total_work"]
        del payload["work_per_edge"]["p99"]
        problems = validate_bench_payload(payload)
        assert any("total_work" in p for p in problems)
        assert any("p99" in p for p in problems)
        assert validate_bench_payload([]) != []

    def test_write_bench_json(self, tmp_path):
        _cm, tr = small_run()
        payload = bench_payload("smoke", self.make_series(), tree=tr.root)
        path = write_bench_json(tmp_path, payload)
        assert path.name == "BENCH_smoke.json"
        loaded = json.loads(path.read_text())
        assert validate_bench_payload(loaded) == []
        assert loaded["phase_shares"]["run/batch/game.drop"]["work"] == 30

    def test_write_rejects_invalid_payload(self, tmp_path):
        with pytest.raises(ParameterError):
            write_bench_json(tmp_path, {"name": "broken"})
