"""Bench history: metric gating, noise thresholds, compare, CLI exit codes."""

import json

import pytest

from repro.cli import main
from repro.instrument.history import (
    ABS_FLOOR_SECONDS,
    BenchHistory,
    DEFAULT_THRESHOLD,
    Regression,
    extract_metrics,
    metric_kind,
    render_trend,
    spark,
)


def payload(name="e99_demo", wall=1.0, peak=50_000.0, work=123456):
    """A minimal BENCH-shaped payload with gated and ungated leaves."""
    return {
        "name": name,
        "total_work": work,  # exact — must never be gated
        "wall_seconds": wall,
        "configs": {
            "serial": {"wall_seconds": wall, "total_depth": 99},
            "process x2": {"wall_seconds": wall * 1.5},
        },
        "out_of_core": {"100000": {"replay_peak_kb": peak}},
    }


class TestMetricGating:
    def test_metric_kind_names(self):
        assert metric_kind("wall_seconds") == "seconds"
        assert metric_kind("configs.serial.wall_seconds") == "seconds"
        assert metric_kind("soak.scenario.seconds") == "seconds"
        assert metric_kind("out_of_core.100000.replay_peak_kb") == "kb"
        assert metric_kind("scenarios.x.peak_rss_kb") == "kb"
        assert metric_kind("ru_maxrss_kb") == "kb"
        # exact replay invariants and non-measurements stay out of the gate
        assert metric_kind("total_work") is None
        assert metric_kind("total_depth") is None
        assert metric_kind("edge_updates") is None
        assert metric_kind("milliseconds") is None
        assert metric_kind("kb") is None

    def test_extract_metrics_walks_nested_dicts(self):
        metrics = extract_metrics(payload(wall=2.0, peak=1000.0))
        assert metrics["wall_seconds"] == 2.0
        assert metrics["configs.serial.wall_seconds"] == 2.0
        assert metrics["configs.process x2.wall_seconds"] == 3.0
        assert metrics["out_of_core.100000.replay_peak_kb"] == 1000.0
        assert "total_work" not in metrics
        assert "configs.serial.total_depth" not in metrics

    def test_extract_metrics_ignores_non_dicts_and_bools(self):
        assert extract_metrics([1, 2, 3]) == {}
        assert extract_metrics({"wall_seconds": True}) == {}


class TestStore:
    def test_append_and_read_back(self, tmp_path):
        hist = BenchHistory(tmp_path / "hist")
        rec = hist.append(payload(), config="ci", sha="abc1234")
        assert rec["experiment"] == "e99_demo"
        assert rec["git_sha"] == "abc1234"
        assert rec["metrics"]["wall_seconds"] == 1.0
        hist.append(payload(wall=1.1), config="ci", sha="abc1235")
        assert hist.experiments() == ["e99_demo"]
        records = hist.records("e99_demo")
        assert [r["git_sha"] for r in records] == ["abc1234", "abc1235"]
        assert hist.records("e99_demo", config="other") == []

    def test_broken_lines_are_skipped(self, tmp_path):
        hist = BenchHistory(tmp_path)
        hist.append(payload(), sha="x")
        path = hist.path_for("e99_demo")
        path.write_text(path.read_text() + "not json\n[1, 2]\n")
        assert len(hist.records("e99_demo")) == 1

    def test_experiment_name_is_sanitized(self, tmp_path):
        hist = BenchHistory(tmp_path)
        hist.append(payload(name="e9/../evil name"), sha="x")
        (only,) = list(hist.root.glob("*.jsonl"))
        assert only.parent == hist.root
        assert "/" not in only.stem and " " not in only.stem


class TestNoiseThreshold:
    def test_thin_history_uses_floor(self, tmp_path):
        hist = BenchHistory(tmp_path)
        hist.append(payload(), sha="a")
        hist.append(payload(), sha="b")
        assert (
            hist.noise_threshold("e99_demo", "wall_seconds")
            == DEFAULT_THRESHOLD
        )

    def test_quiet_history_stays_at_floor(self, tmp_path):
        hist = BenchHistory(tmp_path)
        for _ in range(5):
            hist.append(payload(wall=1.0), sha="a")
        assert (
            hist.noise_threshold("e99_demo", "wall_seconds")
            == DEFAULT_THRESHOLD
        )

    def test_noisy_history_widens_the_gate(self, tmp_path):
        hist = BenchHistory(tmp_path)
        for wall in (1.0, 2.0, 1.0, 2.0, 1.0, 2.0):
            hist.append(payload(wall=wall), sha="a")
        got = hist.noise_threshold("e99_demo", "wall_seconds")
        assert got > DEFAULT_THRESHOLD  # 3 * cv of a 1-vs-2 coin flip


class TestCompare:
    def test_clean_rerun_has_no_regressions(self, tmp_path):
        hist = BenchHistory(tmp_path)
        assert hist.compare(payload(), payload()) == []

    def test_2x_slowdown_is_a_regression(self, tmp_path):
        hist = BenchHistory(tmp_path)
        found = hist.compare(payload(wall=1.0), payload(wall=2.0))
        metrics = {r.metric for r in found}
        assert "wall_seconds" in metrics
        assert "configs.serial.wall_seconds" in metrics
        reg = next(r for r in found if r.metric == "wall_seconds")
        assert reg.ratio == pytest.approx(2.0)
        assert "regressed" in reg.describe()
        assert "2.00x" in reg.describe()

    def test_memory_regression_gated_in_kb(self, tmp_path):
        hist = BenchHistory(tmp_path)
        found = hist.compare(
            payload(peak=50_000.0), payload(peak=120_000.0)
        )
        assert [r.metric for r in found] == ["out_of_core.100000.replay_peak_kb"]
        assert "KiB" in found[0].describe()

    def test_absolute_floor_swallows_tiny_jitter(self, tmp_path):
        hist = BenchHistory(tmp_path)
        # 10x on a 1 ms measurement is still under the 50 ms floor
        assert hist.compare(payload(wall=0.001), payload(wall=0.01)) == []
        assert ABS_FLOOR_SECONDS > 0.009

    def test_metric_missing_from_either_side_is_skipped(self, tmp_path):
        hist = BenchHistory(tmp_path)
        base = payload(wall=1.0)
        cur = payload(wall=1.0)
        del cur["out_of_core"]  # benchmark dropped a config
        base2 = dict(cur)
        assert hist.compare(base, cur) == []
        # ...and a config new in current is not gated either
        assert hist.compare(base2, payload(wall=1.0)) == []

    def test_explicit_threshold_overrides_noise(self, tmp_path):
        hist = BenchHistory(tmp_path)
        found = hist.compare(
            payload(wall=10.0), payload(wall=12.0), threshold=0.05
        )
        assert any(r.metric == "wall_seconds" for r in found)
        assert (
            hist.compare(payload(wall=10.0), payload(wall=12.0), threshold=0.5)
            == []
        )

    def test_regression_fields(self):
        reg = Regression(
            experiment="e", metric="wall_seconds",
            baseline=0.0, current=1.0, threshold=0.25,
        )
        assert reg.ratio == float("inf")


class TestTrend:
    def test_spark_shape(self):
        assert spark([]) == ""
        assert spark([5.0, 5.0, 5.0]) == "▁▁▁"
        line = spark([1, 2, 3, 8])
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"

    def test_render_trend_table(self, tmp_path):
        hist = BenchHistory(tmp_path)
        for wall in (1.0, 1.5, 2.0):
            hist.append(payload(wall=wall), sha="a")
        text = render_trend(hist)
        assert "e99_demo" in text
        assert "wall_seconds" in text
        assert "+100.0%" in text  # 1.0 -> 2.0 vs first
        assert any(bar in text for bar in "▁▂▃▄▅▆▇█")
        only = render_trend(hist, metric="wall_seconds")
        assert "replay_peak_kb" not in only

    def test_render_trend_empty(self, tmp_path):
        assert render_trend(BenchHistory(tmp_path)) == "bench history is empty"


class TestBenchCli:
    def write(self, tmp_path, name, data):
        path = tmp_path / name
        path.write_text(json.dumps(data))
        return str(path)

    def test_record_then_trend(self, tmp_path, capsys):
        hist_dir = str(tmp_path / "hist")
        run = self.write(tmp_path, "run.json", payload())
        assert main(["bench", "--history-dir", hist_dir, "--record", run]) == 0
        out = capsys.readouterr().out
        assert "recorded e99_demo" in out
        trend_file = tmp_path / "trend.txt"
        assert main(
            ["bench", "--history-dir", hist_dir, "--trend",
             "--out", str(trend_file)]
        ) == 0
        assert "wall_seconds" in trend_file.read_text()

    def test_compare_gates_2x_slowdown(self, tmp_path, capsys):
        hist_dir = str(tmp_path / "hist")
        base = self.write(tmp_path, "BENCH_e99_demo.json", payload(wall=1.0))
        slow = self.write(tmp_path, "slow.json", payload(wall=2.0))
        code = main(
            ["bench", "--history-dir", hist_dir,
             "--compare", base, "--current", slow]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "wall_seconds" in out

    def test_compare_clean_rerun_passes(self, tmp_path, capsys):
        hist_dir = str(tmp_path / "hist")
        base = self.write(tmp_path, "BENCH_e99_demo.json", payload(wall=1.0))
        same = self.write(tmp_path, "same.json", payload(wall=1.0))
        code = main(
            ["bench", "--history-dir", hist_dir,
             "--compare", base, "--current", same]
        )
        assert code == 0
        assert "no regressions" in capsys.readouterr().out

    def test_compare_against_baseline_directory(self, tmp_path):
        hist_dir = str(tmp_path / "hist")
        basedir = tmp_path / "baselines"
        basedir.mkdir()
        (basedir / "BENCH_e99_demo.json").write_text(
            json.dumps(payload(wall=1.0))
        )
        slow = self.write(tmp_path, "slow.json", payload(wall=2.0))
        other = self.write(
            tmp_path, "other.json", payload(name="e98_other", wall=9.0)
        )
        assert main(
            ["bench", "--history-dir", hist_dir,
             "--compare", str(basedir), "--current", slow, other]
        ) == 1  # slow regresses; other has no baseline and is skipped

    def test_compare_requires_current(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["bench", "--compare", str(tmp_path / "nope.json")])

    def test_record_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json at all")
        with pytest.raises(SystemExit):
            main(["bench", "--history-dir", str(tmp_path), "--record", str(bad)])
