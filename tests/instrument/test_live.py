"""Live dashboard frames and the /metrics HTTP endpoint."""

import io
import urllib.error
import urllib.request

import pytest

from repro.instrument.export import parse_prometheus
from repro.instrument.live import (
    LiveDashboard,
    MetricsServer,
    TOP_SPANS,
    _fmt_eta,
    serve_metrics,
)
from repro.instrument.telemetry import MetricsRegistry
from repro.instrument.wallclock import FakeClock


def populated_registry():
    reg = MetricsRegistry()
    reg.counter("repro_batches_total", kind="insert").inc(3)
    reg.counter("repro_batches_total", kind="delete").inc(1)
    reg.counter("repro_executor_rounds_total", backend="process").inc(5)
    reg.counter("repro_executor_wait_seconds_total", backend="process").inc(2.5)
    for span, secs in (
        ("game.drop", 8.0),
        ("game.push", 4.0),
        ("ladder.rung", 2.0),
        ("batch", 1.0),
    ):
        reg.counter("repro_span_seconds_total", span=span).inc(secs)
    return reg


class FakeTty(io.StringIO):
    def isatty(self):
        return True


class TestFmtEta:
    def test_ranges(self):
        assert _fmt_eta(42) == "42s"
        assert _fmt_eta(90) == "1m30s"
        assert _fmt_eta(3720) == "1h02m"
        assert _fmt_eta(float("inf")) == "?"
        assert _fmt_eta(-1) == "?"
        assert _fmt_eta(float("nan")) == "?"


class TestLiveDashboard:
    def test_frame_contents(self):
        clk = FakeClock()
        out = io.StringIO()
        dash = LiveDashboard(
            populated_registry(), out, total_batches=10, clock=clk
        )
        clk.advance(2.0)  # 4 batches in 2 s
        frame = dash.render()
        assert "batch 4/10 (40%)" in frame
        assert "2.0 b/s" in frame
        assert "eta 3s" in frame  # 6 remaining at 2 b/s
        assert "exec[process] 5 rounds wait 2.5s" in frame
        # top-3 hottest spans, hottest first; the 4th is cut
        assert "hot: game.drop=8.0s game.push=4.0s ladder.rung=2.0s" in frame
        assert "batch=1.0s" not in frame
        assert dash.frames == 1

    def test_frame_without_total_has_no_eta(self):
        clk = FakeClock()
        dash = LiveDashboard(populated_registry(), io.StringIO(), clock=clk)
        clk.advance(1.0)
        frame = dash.render()
        assert "batch 4" in frame
        assert "eta" not in frame
        assert "%" not in frame

    def test_top_spans_is_three(self):
        assert TOP_SPANS == 3

    def test_throttle_on_non_tty(self):
        clk = FakeClock()
        out = io.StringIO()
        dash = LiveDashboard(
            populated_registry(), out, interval=0.5, clock=clk
        )
        dash({"type": "event"})  # first tick always draws
        dash({"type": "event"})  # 0 s later: throttled
        assert dash.frames == 1
        clk.advance(1.0)
        dash({"type": "event"})  # 1 s < 10x interval on a pipe: throttled
        assert dash.frames == 1
        clk.advance(5.0)
        dash({"type": "event"})
        assert dash.frames == 2
        # pipe frames are whole lines
        assert out.getvalue().count("\n") == 2
        assert "\r" not in out.getvalue()

    def test_tty_redraws_in_place(self):
        clk = FakeClock()
        out = FakeTty()
        dash = LiveDashboard(
            populated_registry(), out, interval=0.5, clock=clk
        )
        dash.maybe_render()
        clk.advance(0.6)  # tty throttle is the bare interval
        dash.maybe_render()
        assert dash.frames == 2
        assert out.getvalue().count("\r\x1b[2K") == 2
        assert "\n" not in out.getvalue()

    def test_close_prints_final_newline_frame(self):
        clk = FakeClock()
        out = FakeTty()
        dash = LiveDashboard(populated_registry(), out, clock=clk)
        dash.close()
        assert out.getvalue().endswith("\n")
        assert dash.frames == 1

    def test_start_close_thread_lifecycle(self):
        dash = LiveDashboard(
            populated_registry(), io.StringIO(), interval=0.01
        )
        dash.start()
        dash.start()  # idempotent
        assert dash._thread is not None
        dash.close()
        assert dash._thread is None


class TestMetricsServer:
    def test_metrics_round_trip_over_http(self):
        server = serve_metrics(populated_registry())
        try:
            assert server.port > 0
            with urllib.request.urlopen(server.url, timeout=5) as resp:
                assert resp.status == 200
                assert "text/plain" in resp.headers["Content-Type"]
                body = resp.read().decode("utf-8")
            samples = parse_prometheus(body)
            assert samples[("repro_batches_total", (("kind", "insert"),))] == 3
            assert samples[
                ("repro_executor_rounds_total", (("backend", "process"),))
            ] == 5
        finally:
            server.close()

    def test_root_path_serves_metrics_too(self):
        server = MetricsServer(populated_registry())
        try:
            url = f"http://127.0.0.1:{server.port}/"
            with urllib.request.urlopen(url, timeout=5) as resp:
                assert b"repro_batches_total" in resp.read()
        finally:
            server.close()

    def test_other_paths_404(self):
        server = MetricsServer(populated_registry())
        try:
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{server.port}/nope", timeout=5
                )
            assert err.value.code == 404
        finally:
            server.close()

    def test_serves_live_registry_state(self):
        reg = MetricsRegistry()
        server = MetricsServer(reg)
        try:
            reg.counter("repro_batches_total").inc(7)
            with urllib.request.urlopen(server.url, timeout=5) as resp:
                samples = parse_prometheus(resp.read().decode("utf-8"))
            assert samples[("repro_batches_total", ())] == 7
        finally:
            server.close()
