"""Tracer attribution, exception unwinding, and the metrics registry."""

import pytest

from repro.errors import ParameterError
from repro.instrument import trace
from repro.instrument.metrics import BatchRecord, BatchTimer, Series
from repro.instrument.telemetry import (
    Histogram,
    MetricsRegistry,
    Tracer,
)
from repro.instrument.work_depth import CostModel


def traced(cm):
    return Tracer(cm)


class TestAttribution:
    def test_nested_spans_attribute_exact_deltas(self):
        cm = CostModel()
        tr = traced(cm)
        with trace.tracing(tr):
            with trace.span("game.drop"):
                cm.charge(work=10, depth=2)
                with trace.span("game.drop.phase"):
                    cm.charge(work=7, depth=1)
            cm.charge(work=3, depth=1)
        drop = tr.root.find("game.drop")[0]
        phase = tr.root.find("game.drop.phase")[0]
        assert drop.work == 17 and phase.work == 7
        assert drop.self_work() == 10
        assert tr.root.work == cm.work == 20
        assert tr.root.total_self_work() == tr.root.work

    def test_sibling_instances_aggregate_into_one_node(self):
        cm = CostModel()
        tr = traced(cm)
        with trace.tracing(tr):
            for _ in range(5):
                with trace.span("game.push"):
                    cm.tick()
        (node,) = tr.root.find("game.push")
        assert node.count == 5 and node.work == 5

    def test_attrs_split_nodes_but_detail_does_not(self):
        cm = CostModel()
        tr = traced(cm)
        with trace.tracing(tr):
            with trace.span("ladder.rung", H=1):
                cm.tick()
            with trace.span("ladder.rung", H=2):
                cm.tick()
            with trace.span("game.drop", detail={"tokens": 1}):
                cm.tick()
            with trace.span("game.drop", detail={"tokens": 9}):
                cm.tick()
        assert len(tr.root.find("ladder.rung")) == 2
        assert len(tr.root.find("game.drop")) == 1

    def test_spans_inside_parallel_branches(self):
        cm = CostModel()
        tr = traced(cm)
        with trace.tracing(tr):
            with cm.parallel() as region:
                for h in (1, 2):
                    with region.branch():
                        with trace.span("ladder.rung", H=h):
                            cm.charge(work=10 * h, depth=h)
        rungs = {dict(n.attrs)["H"]: n for n in tr.root.find("ladder.rung")}
        assert rungs[1].work == 10 and rungs[2].work == 20
        assert tr.root.work == cm.work
        assert tr.frame_mismatches == 0

    def test_multiple_arming_windows_accumulate(self):
        cm = CostModel()
        tr = traced(cm)
        with trace.tracing(tr):
            with trace.span("batch"):
                cm.charge(work=4, depth=1)
        cm.charge(work=100, depth=1)  # unattributed: tracer disarmed
        with trace.tracing(tr):
            with trace.span("batch"):
                cm.charge(work=6, depth=1)
        assert tr.root.find("batch")[0].work == 10
        assert tr.root.work == 10  # the untraced 100 is not attributed


class TestExceptionUnwinding:
    def test_exception_mid_phase_leaves_exact_accounting(self):
        cm = CostModel()
        tr = traced(cm)
        with trace.tracing(tr):
            try:
                with trace.span("game.drop"):
                    cm.charge(work=5, depth=1)
                    with trace.span("game.drop.phase"):
                        cm.charge(work=2, depth=1)
                        raise ValueError("injected mid-phase")
            except ValueError:
                pass
            # the replay continues after the guarded rollback
            with trace.span("game.push"):
                cm.charge(work=3, depth=1)
        assert tr.open_spans == 0
        assert tr.root.work == cm.work == 10
        assert tr.root.total_self_work() == tr.root.work
        assert tr.root.find("game.drop.phase")[0].work == 2

    def test_exception_through_parallel_region_unwinds(self):
        cm = CostModel()
        tr = traced(cm)
        with trace.tracing(tr):
            try:
                with cm.parallel() as region:
                    with region.branch():
                        with trace.span("ladder.rung", H=1):
                            cm.charge(work=8, depth=2)
                            raise RuntimeError("branch died")
            except RuntimeError:
                pass
        assert tr.open_spans == 0
        assert tr.frame_mismatches == 0
        assert tr.root.work == cm.work
        assert tr.root.find("ladder.rung")[0].work == 8

    def test_tracer_is_rearmable_after_exception(self):
        cm = CostModel()
        tr = traced(cm)
        with pytest.raises(RuntimeError):
            with trace.tracing(tr):
                with trace.span("batch"):
                    cm.tick()
                    raise RuntimeError("torn down")
        with trace.tracing(tr):
            with trace.span("batch"):
                cm.tick()
        assert tr.open_spans == 0
        assert tr.root.find("batch")[0].count == 2
        assert tr.root.work == cm.work == 2


class TestRegistry:
    def test_counter_gauge_histogram_basics(self):
        reg = MetricsRegistry()
        reg.counter("repro_batches_total", kind="insert").inc()
        reg.counter("repro_batches_total", kind="insert").inc(2)
        reg.gauge("repro_last_batch_size").set(17)
        reg.histogram("repro_batch_depth").observe(9)
        assert reg.counter("repro_batches_total", kind="insert").value == 3
        assert reg.gauge("repro_last_batch_size").value == 17
        assert reg.histogram("repro_batch_depth").count == 1

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total")
        with pytest.raises(ParameterError):
            reg.gauge("repro_x_total")

    def test_counter_rejects_decrease(self):
        reg = MetricsRegistry()
        with pytest.raises(ParameterError):
            reg.counter("repro_y_total").inc(-1)

    def test_labels_identify_children(self):
        reg = MetricsRegistry()
        reg.counter("repro_batches_total", kind="insert").inc()
        reg.counter("repro_batches_total", kind="delete").inc(5)
        values = {
            dict(m.labels)["kind"]: m.value
            for m in reg.collect()
            if m.name == "repro_batches_total"
        }
        assert values == {"insert": 1, "delete": 5}

    def test_histogram_buckets_are_powers_of_two(self):
        h = Histogram("repro_w")
        for v in (1, 2, 3, 1024, 1025):
            h.observe(v)
        # bucket e covers (2^(e-1), 2^e]
        assert h.buckets[0] == 1  # value 1
        assert h.buckets[1] == 1  # value 2
        assert h.buckets[2] == 1  # value 3
        assert h.buckets[10] == 1  # 1024
        assert h.buckets[11] == 1  # 1025
        assert h.count == 5 and h.max == 1025

    def test_histogram_percentile_bounds(self):
        h = Histogram("repro_w")
        for v in (1, 2, 4, 8, 1000):
            h.observe(v)
        assert h.percentile(50) == 4.0
        assert h.percentile(100) == 1024.0
        with pytest.raises(ValueError):
            h.percentile(101)
        with pytest.raises(ValueError):
            h.percentile(-0.5)


class TestSeriesPercentiles:
    def _series(self, depths):
        s = Series()
        for i, d in enumerate(depths):
            s.add(BatchRecord("insert", 10, work=100 * (i + 1), depth=d, wall_seconds=0.0))
        return s

    def test_percentile_depth(self):
        s = self._series([1, 2, 3, 4, 5])
        assert s.percentile_depth(0) == 1.0
        assert s.percentile_depth(50) == 3.0
        assert s.percentile_depth(100) == 5.0

    def test_percentile_depth_rejects_out_of_range(self):
        s = self._series([1, 2, 3])
        with pytest.raises(ValueError):
            s.percentile_depth(-1)
        with pytest.raises(ValueError):
            s.percentile_depth(100.001)

    def test_percentile_work_per_edge_rejects_out_of_range(self):
        s = self._series([1, 2, 3])
        with pytest.raises(ValueError):
            s.percentile_work_per_edge(120)

    def test_empty_series_percentiles_are_zero(self):
        assert Series().percentile_depth(99) == 0.0


class TestBatchTimerPublishing:
    def test_batch_timer_mirrors_into_registry(self):
        reg = MetricsRegistry()
        cm = CostModel()
        timer = BatchTimer(cm, registry=reg)
        with timer.batch("insert", 4):
            cm.charge(work=40, depth=3)
            cm.count("drop_games")
        assert reg.counter("repro_batches_total", kind="insert").value == 1
        assert reg.counter("repro_work_total").value == 40
        assert reg.gauge("repro_last_batch_size").value == 4
        assert reg.histogram("repro_batch_depth").count == 1
        assert reg.counter("repro_drop_games_total").value == 1

    def test_batch_timer_without_registry_publishes_nothing(self):
        cm = CostModel()
        timer = BatchTimer(cm)
        with timer.batch("insert", 2):
            cm.tick()
        assert len(timer.series.records) == 1
