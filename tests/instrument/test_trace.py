"""The thin span API: disarmed no-ops, arming, taxonomy registration."""

import pytest

from repro.errors import ParameterError
from repro.instrument import trace
from repro.instrument.telemetry import Tracer
from repro.instrument.work_depth import CostModel


class TestDisarmed:
    def test_span_returns_shared_null(self):
        assert trace.ACTIVE is None
        s1 = trace.span("game.drop")
        s2 = trace.span("game.push", detail={"tokens": 3}, H=4)
        assert s1 is trace.NULL
        assert s2 is trace.NULL

    def test_null_span_is_a_noop_context_manager(self):
        with trace.span("ladder.rung", H=2) as node:
            assert node is None

    def test_event_is_a_noop(self):
        trace.event("recovery.escalate", tier="rollback")  # must not raise

    def test_unknown_names_are_not_checked_while_disarmed(self):
        # the disarmed path must stay allocation-free, so no validation
        with trace.span("definitely.not.registered"):
            pass


class TestArming:
    def test_tracing_sets_and_restores_active(self):
        cm = CostModel()
        tr = Tracer(cm)
        assert trace.ACTIVE is None
        with trace.tracing(tr) as armed:
            assert armed is tr
            assert trace.ACTIVE is tr
        assert trace.ACTIVE is None

    def test_tracing_restores_previous_tracer_when_nested(self):
        cm = CostModel()
        outer, inner = Tracer(cm), Tracer(cm)
        with trace.tracing(outer):
            with trace.tracing(inner):
                assert trace.ACTIVE is inner
            assert trace.ACTIVE is outer

    def test_tracing_disarms_on_exception(self):
        cm = CostModel()
        tr = Tracer(cm)
        with pytest.raises(RuntimeError):
            with trace.tracing(tr):
                raise RuntimeError("boom")
        assert trace.ACTIVE is None
        assert tr.open_spans == 0

    def test_armed_span_reaches_the_tracer(self):
        cm = CostModel()
        tr = Tracer(cm)
        with trace.tracing(tr):
            with trace.span("game.drop"):
                cm.charge(work=5, depth=1)
        assert tr.root.find("game.drop")[0].work == 5


class TestTaxonomy:
    def test_registered_names_cover_the_instrumented_sites(self):
        for name in (
            "batch",
            "structure",
            "ladder.rung",
            "balanced.insert",
            "balanced.delete",
            "game.drop.phase",
            "game.push.ranks",
            "bundles.extract",
            "pram.map",
            "recovery.apply",
        ):
            assert name in trace.SPAN_TAXONOMY

    def test_register_span_is_idempotent(self):
        desc = trace.SPAN_TAXONOMY["game.drop"]
        trace.register_span("game.drop", "something else")
        assert trace.SPAN_TAXONOMY["game.drop"] == desc

    def test_register_span_rejects_malformed_names(self):
        with pytest.raises(ParameterError):
            trace.register_span("", "empty")
        with pytest.raises(ParameterError):
            trace.register_span("a..b", "empty dotted part")

    def test_strict_tracer_rejects_unknown_names(self):
        tr = Tracer(CostModel())
        with trace.tracing(tr):
            with pytest.raises(ParameterError):
                trace.span("no.such.span")

    def test_lenient_tracer_accepts_unknown_names(self):
        cm = CostModel()
        tr = Tracer(cm, strict=False)
        with trace.tracing(tr):
            with trace.span("adhoc.name"):
                cm.tick()
        assert tr.root.find("adhoc.name")[0].count == 1
