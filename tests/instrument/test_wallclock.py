"""The Tracer clock, span wall-clock, and the executor overhead ledger."""

import pytest

from repro.core import BalancedOrientation
from repro.instrument import trace
from repro.instrument import telemetry as telemetry_mod
from repro.instrument import wallclock
from repro.instrument.telemetry import MetricsRegistry, Tracer
from repro.instrument.wallclock import (
    ExecutorStats,
    FakeClock,
    RoundWall,
    TaskWall,
    mocked_clock,
)
from repro.instrument.work_depth import CostModel
from repro.pram.executor import ProcessExecutor, RungTask, SerialExecutor
from repro.resilience import guarded


class TestClock:
    def test_fake_clock_steps_and_advances(self):
        clk = FakeClock(start=10.0, step=1.0)
        assert clk() == 10.0
        assert clk() == 11.0
        clk.advance(5.0)
        assert clk() == 17.0
        assert clk.reads == 3

    def test_mocked_clock_swaps_and_restores(self):
        before = wallclock.monotonic()
        with mocked_clock(FakeClock(start=1000.0)):
            assert wallclock.monotonic() == 1000.0
        # restored: back on the real monotonic clock
        assert wallclock.monotonic() >= before

    def test_mocked_clock_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with mocked_clock(FakeClock(start=5.0)):
                raise RuntimeError("boom")
        assert wallclock.monotonic() != 5.0


class TestSpanWall:
    """Span wall timing under exceptions and guarded() rollback."""

    def run_spans(self, fail_inner: bool, tracer=None):
        if tracer is None:
            tracer = Tracer(CostModel(), clock=FakeClock(step=1.0))
        cm = tracer.cm
        st = BalancedOrientation(H=3, cm=cm)
        try:
            with trace.tracing(tracer):
                with trace.span("batch"):
                    with guarded(st):
                        with trace.span("structure"):
                            st.insert_batch([(0, 1), (1, 2)])
                            if fail_inner:
                                raise RuntimeError("mid-batch fault")
        except RuntimeError:
            pass
        return tracer

    def node(self, tracer, name):
        nodes = tracer.root.find(name)
        assert len(nodes) == 1
        return nodes[0]

    def test_exception_still_records_monotone_walls(self):
        tracer = self.run_spans(fail_inner=True)
        outer = self.node(tracer, "batch")
        inner = self.node(tracer, "structure")
        # both spans closed (guarded re-raised through them) and timed
        assert tracer.open_spans == 0
        assert tracer.frame_mismatches == 0
        assert inner.count == outer.count == 1
        # outer opened before inner and closed after it (the rollback ran
        # between the two exits), so its wall is strictly larger
        assert 0 < inner.wall < outer.wall <= tracer.root.wall

    def test_rollback_then_rerun_does_not_double_count(self):
        # the same failing pass, twice, on one tracer: every FakeClock
        # read sequence is identical, so each span's wall must exactly
        # double — the failed pass's wall is neither lost nor re-added.
        tracer = self.run_spans(fail_inner=True)
        inner1 = self.node(tracer, "structure").wall
        outer1 = self.node(tracer, "batch").wall
        self.run_spans(fail_inner=True, tracer=tracer)
        inner = self.node(tracer, "structure")
        outer = self.node(tracer, "batch")
        assert inner.count == outer.count == 2
        assert inner.wall == 2 * inner1
        assert outer.wall == 2 * outer1
        assert tracer.open_spans == 0

    def test_span_seconds_published_even_on_error(self):
        cm = CostModel()
        reg = MetricsRegistry()
        tracer = Tracer(cm, clock=FakeClock(step=1.0), registry=reg)
        with pytest.raises(RuntimeError):
            with trace.tracing(tracer):
                with trace.span("batch"):
                    raise RuntimeError("boom")
        assert reg.counter("repro_spans_total", span="batch").value == 1
        assert reg.counter("repro_span_seconds_total", span="batch").value == 1.0

    def test_wall_timing_never_touches_cost_model(self):
        tracer = self.run_spans(fail_inner=False)
        cm2 = CostModel()
        st = BalancedOrientation(H=3, cm=cm2)
        with guarded(st):
            st.insert_batch([(0, 1), (1, 2)])
        assert tracer.cm.work == cm2.work
        assert tracer.cm.depth == cm2.depth


class TestExecutorStats:
    def synthetic_round(self) -> RoundWall:
        # 2 lanes, 4 tasks: busy 5.0 lane-seconds over a 2.6 s wait
        tasks = [
            TaskWall(
                label=f"ladder.rung[H={h}]",
                payload_bytes=1000,
                result_bytes=2000,
                serialize_s=0.05,
                deserialize_s=0.025,
                queue_s=0.3,
                compute_s=1.2,
                worker_pickle_s=0.05,
            )
            for h in (1, 2, 3, 4)
        ]
        return RoundWall(
            backend="process",
            workers=2,
            wall_s=3.0,
            serialize_s=0.2,
            wait_s=2.6,
            deserialize_s=0.1,
            merge_s=0.1,
            tasks=tasks,
        )

    def test_components_are_wall_equivalent(self):
        stats = ExecutorStats("process")
        stats.record_round(self.synthetic_round())
        c = stats.components()
        assert c["compute"] == pytest.approx(2.4)  # 4.8 lane-s / 2 lanes
        assert c["pickle"] == pytest.approx(0.2 + 0.1 + 0.1)
        # wait minus per-lane busy: 2.6 - 5.0/2
        assert c["queue"] == pytest.approx(0.1)
        assert c["merge"] == pytest.approx(0.1)
        assert stats.coverage() == pytest.approx(1.0)
        phrase, share = stats.dominant()
        assert phrase == "worker compute"
        assert share == pytest.approx(0.8)

    def test_idle_is_clamped_nonnegative(self):
        rnd = self.synthetic_round()
        assert rnd.idle_s() == pytest.approx(0.2)  # 2 * 2.6 - 5.0
        starved = RoundWall(
            backend="process", workers=4, wall_s=1.0, wait_s=0.1,
            tasks=[TaskWall(label="x", compute_s=5.0)],
        )
        assert starved.idle_s() == 0.0

    def test_render_names_dominant_cost_and_coverage(self):
        stats = ExecutorStats("process")
        stats.record_round(self.synthetic_round())
        report = stats.render()
        assert "ladder.rung[H=1]" in report
        assert "80% of process-backend wall-clock is worker compute" in report
        assert "explain 100% of measured executor wall-clock" in report
        assert "coordinator timeline" in report

    def test_publishes_executor_metrics(self):
        reg = MetricsRegistry()
        stats = ExecutorStats("process")
        stats.record_round(self.synthetic_round(), registry=reg)
        assert reg.counter("repro_executor_rounds_total", backend="process").value == 1
        assert reg.counter("repro_executor_tasks_total", backend="process").value == 4
        assert (
            reg.counter("repro_executor_payload_bytes_total", backend="process").value
            == 4000
        )
        assert reg.histogram(
            "repro_executor_round_wall_seconds", backend="process"
        ).count == 1

    def test_empty_ledger_coverage_is_one(self):
        stats = ExecutorStats("serial")
        assert stats.coverage() == 1.0


class TestExecutorRoundAccounting:
    """run_structures feeds the ledger on both backends."""

    def make_task(self, cm: CostModel) -> RungTask:
        st = BalancedOrientation(H=3, cm=cm)
        return RungTask(
            structure=st,
            method="insert_batch",
            args=([(0, 1), (1, 2), (2, 3)],),
        )

    def test_serial_round_is_all_compute(self):
        telemetry_mod.REGISTRY.clear()
        cm = CostModel()
        ex = SerialExecutor()
        with mocked_clock(FakeClock(step=1.0)):
            ex.run_structures(cm, [self.make_task(cm)])
        assert ex.stats.rounds == 1
        assert ex.stats.task_count == 1
        assert ex.stats.totals["compute_s"] > 0
        assert ex.stats.totals["serialize_s"] == 0
        assert ex.stats.totals["queue_wall_s"] == 0
        phrase, _share = ex.stats.dominant()
        assert phrase == "worker compute"
        assert (
            telemetry_mod.REGISTRY.counter(
                "repro_executor_rounds_total", backend="serial"
            ).value
            == 1
        )

    def test_process_inline_round_accounts_bytes_and_phases(self):
        telemetry_mod.REGISTRY.clear()
        cm = CostModel()
        with ProcessExecutor(max_workers=1) as ex:
            with mocked_clock(FakeClock(step=1.0)):
                ex.run_structures(cm, [self.make_task(cm)])
            stats = ex.stats
        assert stats.rounds == 1
        assert stats.totals["payload_bytes"] > 0
        assert stats.totals["result_bytes"] > 0
        # every coordinator timeline segment was measured on the fake clock
        for key in ("serialize_s", "wait_s", "deserialize_s", "merge_s"):
            assert stats.totals[key] > 0, key
        # worker-side decomposition measured too (same process, same clock)
        assert stats.totals["compute_s"] > 0
        assert stats.totals["worker_pickle_s"] > 0
        assert stats.totals["queue_s"] > 0
        assert 0.0 < stats.coverage() <= 1.5
        assert (
            telemetry_mod.REGISTRY.counter(
                "repro_executor_tasks_total", backend="process"
            ).value
            == 1
        )
