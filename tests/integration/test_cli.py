"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestGenerate:
    def test_insert_only(self, tmp_path, capsys):
        out = tmp_path / "t.txt"
        rc = main(
            [
                "generate", "--family", "er", "--n", "20", "--m", "40",
                "--pattern", "insert-only", "--batch-size", "10",
                "--out", str(out),
            ]
        )
        assert rc == 0
        assert out.exists()
        assert "wrote 4 batches" in capsys.readouterr().out

    def test_churn_pattern(self, tmp_path):
        out = tmp_path / "c.txt"
        rc = main(
            [
                "generate", "--pattern", "churn", "--n", "20",
                "--steps", "15", "--batch-size", "5", "--out", str(out),
            ]
        )
        assert rc == 0

    def test_planted_family(self, tmp_path):
        out = tmp_path / "p.txt"
        rc = main(
            [
                "generate", "--family", "planted", "--n", "24", "--m", "60",
                "--pattern", "insert-delete", "--batch-size", "12",
                "--out", str(out),
            ]
        )
        assert rc == 0


@pytest.fixture
def small_trace(tmp_path):
    out = tmp_path / "trace.txt"
    main(
        [
            "generate", "--family", "er", "--n", "16", "--m", "30",
            "--pattern", "insert-only", "--batch-size", "15", "--out", str(out),
        ]
    )
    return out


class TestRun:
    def test_both_modes(self, small_trace, capsys):
        rc = main(["run", "--trace", str(small_trace), "--mode", "both", "--eps", "0.4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "rho_alg" in out
        assert "max core_alg" in out
        assert "work/edge" in out

    def test_coreness_only(self, small_trace, capsys):
        rc = main(["run", "--trace", str(small_trace), "--mode", "coreness", "--eps", "0.4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "rho_alg" not in out


class TestExact:
    def test_reports_exact_measures(self, small_trace, capsys):
        rc = main(["exact", "--trace", str(small_trace)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "max coreness" in out
        assert "exact rho" in out
