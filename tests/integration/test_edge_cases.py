"""Edge-case sweep across the public API surface."""

import pytest

from repro.apps import ImplicitColoring, MaximalMatching
from repro.config import Constants, ladder_heights
from repro.core import (
    BalancedOrientation,
    CorenessDecomposition,
    DensityEstimator,
    DuplicatedBalanced,
    LowOutDegree,
)
from repro.errors import BatchError, ParameterError
from repro.graphs import generators as gen


SMALL = Constants(sample_c=0.5, min_B=4, duplication_cap=8)


class TestSparseVertexIds:
    """Vertex ids need not be dense 0..n-1."""

    def test_balanced_with_huge_ids(self):
        st = BalancedOrientation(H=3)
        st.insert_batch([(10**9, 10**9 + 1), (10**9 + 1, 5)])
        st.check_invariants()
        st.delete_batch([(10**9, 10**9 + 1)])
        st.check_invariants()

    def test_coreness_with_scattered_ids(self):
        cd = CorenessDecomposition(2048, eps=0.4, constants=SMALL)
        cd.insert_batch([(7, 2000), (2000, 1234)])
        assert cd.estimate(2000) >= 1.0


class TestSingletonAndTiny:
    def test_single_edge_everything(self):
        st = BalancedOrientation(H=1)
        st.insert_batch([(0, 1)])
        st.check_invariants()
        assert st.max_outdegree() == 1
        st.delete_batch([(0, 1)])
        assert st.max_outdegree() == 0

    def test_h_equals_one_on_cycle(self):
        n, edges = gen.cycle(6)
        st = BalancedOrientation(H=1)
        st.insert_batch(edges)
        st.check_invariants()

    def test_two_vertex_density(self):
        de = DensityEstimator(4, eps=0.4, constants=SMALL)
        de.insert_batch([(0, 1)])
        assert de.density_estimate() >= 0.5

    def test_ladder_on_tiny_n(self):
        assert ladder_heights(2, 0.5)[0] == 1
        cd = CorenessDecomposition(2, eps=0.5, constants=SMALL)
        cd.insert_batch([(0, 1)])
        assert cd.estimate(0) >= 1.0


class TestRepeatedBatchBoundaries:
    def test_insert_delete_same_edge_many_times(self):
        st = BalancedOrientation(H=2)
        for _ in range(10):
            st.insert_batch([(3, 4)])
            st.delete_batch([(3, 4)])
        st.check_invariants()
        assert st.num_arcs() == 0

    def test_alternating_on_dup_structure(self):
        d = DuplicatedBalanced(inner_H=6, K=3)
        for _ in range(4):
            d.insert_batch([(0, 1)])
            d.delete_batch([(0, 1)])
        d.check_invariants()

    def test_lowoutdegree_alternation(self):
        lod = LowOutDegree(3, 0.4, 8, constants=SMALL)
        for _ in range(4):
            lod.insert_batch([(0, 1), (1, 2)])
            lod.delete_batch([(0, 1), (1, 2)])
            lod.check_invariants()
        assert lod.max_outdegree() == 0


class TestValidationMessages:
    def test_balanced_reports_offending_edge(self):
        st = BalancedOrientation(H=3)
        st.insert_batch([(0, 1)])
        with pytest.raises(BatchError, match=r"\(0, 1\)"):
            st.insert_batch([(1, 0)])

    def test_matching_rejects_bad_rho(self):
        mm = MaximalMatching(0, 8, constants=SMALL)  # clamped to 1
        assert mm.rho_max == 1

    def test_duplicated_validates_multi_batch(self):
        d = DuplicatedBalanced(inner_H=4, K=2)
        d.insert_batch([(0, 1)])
        with pytest.raises(BatchError):
            d.inner.insert_multi_batch([(0, 1, 0)])


class TestImplicitColoringConsistency:
    def test_separate_queries_agree(self):
        ic = ImplicitColoring(20, eps=0.4, constants=SMALL, seed=70)
        n, edges = gen.grid(4, 5)
        ic.insert_batch(edges)
        first = ic.query([0, 5, 10])
        second = ic.query([5])
        assert first[5] == second[5]

    def test_queries_reflect_updates(self):
        ic = ImplicitColoring(12, eps=0.4, constants=SMALL, seed=71)
        ic.insert_batch([(0, 1)])
        a = ic.query([0, 1])
        assert a[0] != a[1]
        ic.insert_batch([(1, 2), (0, 2)])
        b = ic.query([0, 1, 2])
        assert len({b[0], b[1], b[2]}) == 3


class TestCliErrorPaths:
    def test_verify_reports_ok_exit_code(self, tmp_path):
        from repro.cli import main

        trace = tmp_path / "t.txt"
        trace.write_text("I 0 1 1 2\nD 0 1\n")
        assert main(["verify", "--trace", str(trace)]) == 0

    def test_malformed_trace_raises(self, tmp_path):
        from repro.cli import main

        trace = tmp_path / "bad.txt"
        trace.write_text("I 0\n")
        with pytest.raises(BatchError):
            main(["run", "--trace", str(trace)])
