"""End-to-end integration: every layer stacked, against exact oracles."""

import pytest

from repro.apps import ExplicitColoring, ImplicitColoring, MaximalMatching
from repro.baselines import core_numbers, exact_density
from repro.config import Constants
from repro.core import BalancedOrientation, CorenessDecomposition, DensityEstimator
from repro.graphs import DynamicGraph, generators as gen, streams
from repro.instrument import BatchTimer, CostModel, project


SMALL = Constants(sample_c=0.5, min_B=4, duplication_cap=8)


class TestFullPipelineOnDynamicWorkload:
    def test_coreness_pipeline_tracks_exact_through_stream(self):
        n = 30
        cd = CorenessDecomposition(n, eps=0.4, constants=SMALL, seed=1)
        model = DynamicGraph(n)
        ops = streams.churn(n, steps=14, batch_size=8, seed=1)
        for op in ops:
            if op.kind == "insert":
                cd.insert_batch(op.edges)
                model.insert_batch(op.edges)
            else:
                cd.delete_batch(op.edges)
                model.delete_batch(op.edges)
        exact = core_numbers(model)
        for v in model.touched_vertices():
            c = exact.get(v, 0)
            if c >= 2:
                assert 0.15 * c <= cd.estimate(v) <= 5.0 * c

    def test_density_pipeline_through_ramp(self):
        n = 30
        de = DensityEstimator(n, eps=0.4, constants=SMALL, seed=2)
        model = DynamicGraph(n)
        for op in streams.density_ramp(n, block=12, levels=5, per_level=12, seed=2):
            de.insert_batch(op.edges)
            model.insert_batch(op.edges)
            rho = exact_density(model)
            est = de.density_estimate()
            assert est >= 0.4 * rho
            assert est <= max(2.0, 2.5 * rho)

    def test_all_apps_share_one_workload(self):
        n = 24
        mm = MaximalMatching(5, n, eps=0.4, constants=SMALL)
        ec = ExplicitColoring(5, n, eps=0.4, constants=SMALL)
        ic = ImplicitColoring(n, eps=0.4, constants=SMALL)
        live: set = set()
        for op in streams.churn(n, steps=10, batch_size=5, seed=3):
            for app in (mm, ec, ic):
                if op.kind == "insert":
                    app.insert_batch(op.edges)
                else:
                    app.delete_batch(op.edges)
            live = live | set(op.edges) if op.kind == "insert" else live - set(op.edges)
            mm.check_matching()
            ec.check_proper(live)
        if live:
            ic.check_proper(sorted(live))


class TestWorstCaseClaim:
    """The paper's headline: per-batch work bounded even after heavy history."""

    def test_tiny_batches_stay_cheap_after_big_history(self):
        cm = CostModel()
        st = BalancedOrientation(H=5, cm=cm)
        timer = BatchTimer(cm)
        n, edges = gen.erdos_renyi(80, 500, seed=4)
        with timer.batch("big", 480):
            st.insert_batch(edges[:480])
        for i in range(480, 500):
            with timer.batch("tiny", 1):
                st.insert_batch([edges[i]])
        records = timer.series.records
        big = records[0]
        tiny_max = max(r.work for r in records[1:])
        # every 1-edge batch costs a vanishing fraction of the 480-edge one
        assert tiny_max < 0.05 * big.work

    def test_brent_projection_sane(self):
        cm = CostModel()
        st = BalancedOrientation(H=4, cm=cm)
        n, edges = gen.erdos_renyi(50, 250, seed=5)
        st.insert_batch(edges)
        pts = project(cm.work, cm.depth, [1, 4, 16, 64])
        assert pts[0].speedup_upper == pytest.approx(1.0)
        assert pts[-1].speedup_upper > 1.0


class TestCrossValidation:
    def test_orientation_agrees_with_graph(self):
        n, edges = gen.barabasi_albert(40, 3, seed=6)
        st = BalancedOrientation(H=5)
        st.insert_batch(edges)
        arcs = {tuple(sorted((t, h))) for (t, h, _c) in st.arcs()}
        assert arcs == set(edges)

    def test_degenerate_empty_batches(self):
        st = BalancedOrientation(H=3)
        st.insert_batch([])
        st.delete_batch([])
        st.check_invariants()
        cd = CorenessDecomposition(8, eps=0.4, constants=SMALL)
        cd.insert_batch([])
        assert cd.estimates() == {}
