"""Failure injection: corrupted state must be *detected*, not absorbed.

The check_invariants() methods are the library's safety net; these tests
prove the net actually catches each class of corruption (a checker that
always passes would be worse than none).
"""

import pytest

from repro.core import BalancedOrientation
from repro.core.balanced import tail_key
from repro.errors import ConvergenceError, InvariantViolation, ParameterError
from repro.graphs import generators as gen


def build(H=4, seed=0):
    n, edges = gen.erdos_renyi(20, 50, seed=seed)
    st = BalancedOrientation(H=H)
    st.insert_batch(edges)
    return st


class TestCorruptionDetected:
    def test_level_corruption(self):
        st = build()
        v = next(iter(st.level))
        st.level[v] += 1
        with pytest.raises(InvariantViolation):
            st.check_invariants()

    def test_balance_corruption(self):
        st = build(H=3)
        # force an artificial imbalance: bump a tail's level way up
        tail, head, copy = next(iter(st.arcs()))
        outset = st.out[tail]
        st.level[tail] = st.level.get(head, 0) + 10
        with pytest.raises(InvariantViolation):
            st.check_invariants()

    def test_stray_index_entry(self):
        st = build()
        st._inx(0).add(tail_key(99, 0), 1, 0, 2)
        with pytest.raises(InvariantViolation):
            st.check_invariants()

    def test_missing_index_entry(self):
        st = build()
        head, index = next((h, ix) for h, ix in st.inx.items() if len(ix) > 0)
        tail, tr, label, lev = next(iter(index.entries()))
        index.remove(tail, tr, label, lev)
        with pytest.raises(InvariantViolation):
            st.check_invariants()

    def test_wrong_filing_slot(self):
        st = build()
        head, index = next((h, ix) for h, ix in st.inx.items() if len(ix) > 0)
        tail, tr, label, lev = next(iter(index.entries()))
        index.move(tail, (tr, label, lev), (tr, 3, lev))
        with pytest.raises(InvariantViolation):
            st.check_invariants()

    def test_leftover_label(self):
        st = build()
        st.vertex_label[0] = 2
        with pytest.raises(InvariantViolation):
            st.check_invariants()

    def test_tail_map_corruption(self):
        st = build()
        (a, b, c), tail = next(iter(st.tail_of.items()))
        st.tail_of[(a, b, c)] = b if tail == a else a
        with pytest.raises(InvariantViolation):
            st.check_invariants()


class TestConvergenceGuards:
    def test_phase_guard_raises_not_hangs(self):
        from repro.config import Constants

        # a pathological safety factor of 0 forces the guard to fire
        st = BalancedOrientation(H=3, constants=Constants(phase_safety=0, bundle_safety=0))
        n, edges = gen.clique(10)
        with pytest.raises(ConvergenceError):
            st.insert_batch(edges)


class TestParameterValidation:
    def test_bad_eps_everywhere(self):
        from repro.core import CorenessDecomposition, DensityEstimator, FixedHCorenessEstimator

        with pytest.raises(ParameterError):
            FixedHCorenessEstimator(H=2, eps=0.0, n=8)
        with pytest.raises(ParameterError):
            CorenessDecomposition(8, eps=1.5)
        with pytest.raises(ParameterError):
            DensityEstimator(8, eps=-0.1)

    def test_bad_height(self):
        from repro.core import FixedHDensityGuard

        with pytest.raises(ParameterError):
            FixedHDensityGuard(H=0, eps=0.3, n=8)

    def test_constants_B_validation(self):
        from repro.config import Constants

        with pytest.raises(ParameterError):
            Constants().B(0, 0.3)
        with pytest.raises(ParameterError):
            Constants().B(10, 2.0)
