"""`repro profile` and the telemetry flags of `repro run`, end to end."""

import json
import re

import pytest

from repro.cli import main
from repro.instrument.export import (
    parse_prometheus,
    read_jsonl,
    validate_bench_payload,
)


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "t.txt"
    rc = main(
        [
            "generate", "--family", "planted", "--n", "32", "--m", "90",
            "--pattern", "insert-delete", "--batch-size", "12",
            "--out", str(path),
        ]
    )
    assert rc == 0
    return path


class TestProfile:
    def test_phase_tree_sums_to_cost_model_total(self, trace_path, capsys):
        rc = main(
            ["profile", "--trace", str(trace_path), "--mode", "coreness"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        match = re.search(
            r"phase-tree work (\d+) == cost-model work (\d+) \(exact\)", out
        )
        assert match, out
        assert match.group(1) == match.group(2)
        assert "ladder.rung" in out
        assert "(self" in out  # explicit self-accounting rows

    def test_check_passes_bit_identity(self, trace_path, capsys):
        rc = main(
            [
                "profile", "--trace", str(trace_path), "--mode", "coreness",
                "--check",
            ]
        )
        assert rc == 0
        assert "bit-identical" in capsys.readouterr().out

    def test_bench_and_prom_artifacts(self, trace_path, tmp_path, capsys):
        prom = tmp_path / "metrics.prom"
        rc = main(
            [
                "profile", "--trace", str(trace_path), "--mode", "both",
                "--name", "smoke", "--bench-out", str(tmp_path),
                "--prom", str(prom),
            ]
        )
        assert rc == 0
        payload = json.loads((tmp_path / "BENCH_smoke.json").read_text())
        assert validate_bench_payload(payload) == []
        assert payload["name"] == "smoke"
        assert payload["batches"] > 0
        assert any("ladder.rung" in k for k in payload["phase_shares"])
        shares = payload["phase_shares"]
        total = shares["run"]["work"]
        assert total == payload["total_work"]
        assert sum(s["self_work"] for s in shares.values()) == total
        samples = parse_prometheus(prom.read_text())
        assert samples[("repro_work_total", ())] == payload["total_work"]

    def test_telemetry_jsonl(self, trace_path, tmp_path):
        log = tmp_path / "events.jsonl"
        rc = main(
            [
                "profile", "--trace", str(trace_path), "--mode", "coreness",
                "--telemetry", str(log),
            ]
        )
        assert rc == 0
        events = read_jsonl(log)
        assert events
        names = {e["name"] for e in events}
        assert {"batch", "structure", "ladder.rung"} <= names


class TestRunFlags:
    def test_run_telemetry_flag(self, trace_path, tmp_path, capsys):
        log = tmp_path / "run.jsonl"
        rc = main(
            [
                "run", "--trace", str(trace_path), "--mode", "coreness",
                "--telemetry", str(log),
            ]
        )
        assert rc == 0
        assert "telemetry events" in capsys.readouterr().out
        assert read_jsonl(log)

    def test_run_progress_flag(self, trace_path, capsys):
        rc = main(
            [
                "run", "--trace", str(trace_path), "--mode", "coreness",
                "--progress", "2",
            ]
        )
        assert rc == 0
        err = capsys.readouterr().err
        lines = [ln for ln in err.splitlines() if ln.startswith("[progress]")]
        assert lines
        assert all("work=" in ln and "depth=" in ln for ln in lines)

    def test_run_without_flags_stays_disarmed(self, trace_path, capsys):
        rc = main(["run", "--trace", str(trace_path), "--mode", "coreness"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "[progress]" not in captured.err
        assert "telemetry" not in captured.out
