"""Soak tests: larger instances, longer streams, full invariant audits.

These run at the top of the scale budgeted for CI (~10s total); they are
the closest thing to the paper's "polynomial-length run" setting.
"""

import random

from repro.core import BalancedOrientation, audit_orientation, replay_audit
from repro.config import Constants
from repro.graphs import DynamicGraph, generators as gen, streams


SMALL = Constants(sample_c=0.5, min_B=4, duplication_cap=8)


def test_soak_large_ba_graph_lifecycle():
    n, edges = gen.barabasi_albert(400, 3, seed=60)
    st = BalancedOrientation(H=6)
    g = DynamicGraph(n)
    for i in range(0, len(edges), 120):
        batch = edges[i : i + 120]
        st.insert_batch(batch)
        g.insert_batch(batch)
    assert audit_orientation(st, g).ok
    doomed = list(edges)
    random.Random(61).shuffle(doomed)
    for i in range(0, len(doomed), 150):
        batch = doomed[i : i + 150]
        st.delete_batch(batch)
        g.delete_batch(batch)
    assert audit_orientation(st, g).ok
    assert st.num_arcs() == 0


def test_soak_long_churn_replay_audit():
    ops = streams.churn(120, steps=150, batch_size=15, seed=62)
    report = replay_audit(ops, H=5, constants=SMALL, audit_every=10)
    assert report.ok, report.render()


def test_soak_rmat_with_low_h():
    n, edges = gen.rmat(8, 500, seed=63)
    st = BalancedOrientation(H=3)
    for i in range(0, len(edges), 100):
        st.insert_batch(edges[i : i + 100])
    st.check_invariants()
    st.delete_batch(edges[: len(edges) // 2])
    st.check_invariants()


def test_soak_sawtooth_marathon():
    st = BalancedOrientation(H=4)
    for op in streams.sawtooth_clique(8, repeats=10, small_batch=3):
        if op.kind == "insert":
            st.insert_batch(op.edges)
        else:
            st.delete_batch(op.edges)
    st.check_invariants()
    assert st.num_arcs() == 0
