"""Chaos soak: seeded trials recover and audit green; runs are reproducible."""

import pytest

from repro.config import Constants
from repro.errors import ParameterError
from repro.resilience.chaos import chaos_soak, render_soak_summary

CONSTANTS = Constants(sample_c=0.5, min_B=4, duplication_cap=8)


def test_balanced_soak_is_green():
    report = chaos_soak(
        "balanced",
        trials=4,
        seed=3,
        faults_per_trial=3,
        batches=12,
        batch_size=5,
        n=18,
        constants=CONSTANTS,
    )
    assert report.ok, report.render()
    assert report.trials == 4
    assert report.faults_fired > 0
    assert report.stats.batches == report.batches


@pytest.mark.parametrize("structure", ["coreness", "density"])
def test_ladder_soak_is_green(structure):
    report = chaos_soak(
        structure,
        trials=2,
        seed=5,
        faults_per_trial=2,
        batches=10,
        batch_size=4,
        n=16,
        constants=CONSTANTS,
        deep_audit=False,  # the per-batch health audits still run
    )
    assert report.ok, report.render()
    assert report.faults_fired > 0


def test_soak_is_deterministic():
    kwargs = dict(
        trials=3,
        seed=11,
        faults_per_trial=2,
        batches=10,
        batch_size=4,
        n=16,
        constants=CONSTANTS,
    )
    a = chaos_soak("balanced", **kwargs)
    b = chaos_soak("balanced", **kwargs)
    assert a.stats.counts == b.stats.counts
    assert a.faults_fired == b.faults_fired
    assert a.findings == b.findings


def test_unknown_structure_rejected():
    with pytest.raises(ParameterError, match="unknown structure"):
        chaos_soak("btree", trials=1, constants=CONSTANTS)


def test_summary_renders():
    report = chaos_soak(
        "balanced",
        trials=1,
        seed=0,
        batches=6,
        batch_size=4,
        n=12,
        constants=CONSTANTS,
    )
    table = render_soak_summary([report])
    assert "balanced" in table and "verdict" in table
