"""Ladder-wide checkpoints: exact roundtrip, validation of bad payloads."""

import json

import pytest

from repro.core.balanced import BalancedOrientation
from repro.core.coreness import CorenessDecomposition
from repro.core.density import DensityEstimator
from repro.errors import BatchError
from repro.resilience import checkpoint as cp
from repro.resilience.guard import capture

EDGES = [
    (0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (0, 3),
    (3, 4), (2, 4), (4, 5), (0, 5), (1, 5), (2, 5),
]


def _ladder(cls):
    st = cls(12, eps=0.35, seed=4)
    st.insert_batch(EDGES[:8])
    st.delete_batch(EDGES[2:5])
    return st


@pytest.mark.parametrize("cls", [CorenessDecomposition, DensityEstimator])
class TestLadderRoundtrip:
    def test_roundtrip_is_canonical(self, cls):
        st = _ladder(cls)
        restored = cp.from_json(cp.to_json(st))
        assert cp.checkpoint(st) == cp.checkpoint(restored)
        restored.check_invariants()

    def test_restored_structure_keeps_answering(self, cls):
        st = _ladder(cls)
        restored = cp.from_json(cp.to_json(st))
        st.insert_batch(EDGES[8:])
        restored.insert_batch(EDGES[8:])
        assert cp.checkpoint(st) == cp.checkpoint(restored)
        if cls is CorenessDecomposition:
            assert st.estimates() == restored.estimates()
        else:
            assert st.density_estimate() == restored.density_estimate()
            assert st.max_outdegree() == restored.max_outdegree()

    def test_payload_is_json_plain(self, cls):
        payload = cp.checkpoint(_ladder(cls))
        assert json.loads(json.dumps(payload)) == payload


def test_balanced_roundtrip():
    st = BalancedOrientation(3)
    st.insert_batch(EDGES[:8])
    restored = cp.from_json(cp.to_json(st))
    assert capture(st)["tail_of"] == capture(restored)["tail_of"]
    assert restored.H == st.H


class TestValidation:
    def test_not_json(self):
        with pytest.raises(BatchError, match="not valid JSON"):
            cp.from_json("{truncated")

    def test_not_a_mapping(self):
        with pytest.raises(BatchError, match="must be a mapping"):
            cp.restore_checkpoint([1, 2, 3])

    def test_unknown_type(self):
        with pytest.raises(BatchError, match="unknown checkpoint type"):
            cp.restore_checkpoint({"type": "mystery"})

    def test_missing_keys(self):
        with pytest.raises(BatchError, match="missing key"):
            cp.restore_checkpoint({"type": "coreness", "n": 5})

    def test_bad_constants(self):
        payload = cp.checkpoint(_ladder(CorenessDecomposition))
        payload["constants"] = {"no_such_field": 1}
        with pytest.raises(BatchError, match="constants are malformed"):
            cp.restore_checkpoint(payload)

    def test_rung_count_mismatch(self):
        payload = cp.checkpoint(_ladder(CorenessDecomposition))
        payload["rungs"] = payload["rungs"][:-1]
        with pytest.raises(BatchError, match="rungs"):
            cp.restore_checkpoint(payload)

    def test_truncated_rung_state(self):
        payload = cp.checkpoint(_ladder(CorenessDecomposition))
        payload["rungs"][0] = {"inner": {"arcs": []}}  # levels missing
        with pytest.raises(BatchError, match="arcs.*levels|missing"):
            cp.restore_checkpoint(payload)

    def test_repeated_arc_rejected(self):
        payload = cp.checkpoint(_ladder(CorenessDecomposition))
        state = payload["rungs"][0]["inner"]
        if state["arcs"]:
            state["arcs"].append(state["arcs"][0])
            with pytest.raises(BatchError, match="repeats arc"):
                cp.restore_checkpoint(payload)

    def test_cannot_checkpoint_unknown(self):
        with pytest.raises(BatchError, match="cannot checkpoint"):
            cp.checkpoint(object())

    def test_bucket_regime_roundtrip_and_bad_index(self):
        from repro.config import Constants

        cheap = Constants(sample_c=0.5, min_B=4, duplication_cap=8)
        st = DensityEstimator(40, eps=0.5, seed=4, constants=cheap)
        assert any(r.regime == "buckets" for r in st.rungs)
        st.insert_batch(EDGES)
        restored = cp.restore_checkpoint(cp.checkpoint(st))
        assert cp.checkpoint(st) == cp.checkpoint(restored)
        payload = cp.checkpoint(st)
        for rung_state in payload["rungs"]:
            if "buckets" in rung_state:
                rung_state["buckets"]["999999"] = {"arcs": [], "levels": {}}
                with pytest.raises(BatchError, match="outside"):
                    cp.restore_checkpoint(payload)
                return
        raise AssertionError("no bucket-regime rung found")
