"""Property test: every batch is strongly exception safe under injection.

Hypothesis drives arbitrary small update schedules, then picks an
injection site and hit number.  If the fault fires mid-batch, the guarded
batch must leave the structure *exactly* in its pre-batch logical state
with invariants green; if it never fires, the batch must succeed normally.
"""

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core.balanced import BalancedOrientation
from repro.core.coreness import CorenessDecomposition
from repro.errors import FaultInjected
from repro.graphs.graph import norm_edge
from repro.resilience.faults import SITES, FaultInjector, FaultSpec, injecting
from repro.resilience.guard import capture, guarded

SITE_LIST = sorted(SITES)


@st.composite
def schedules(draw):
    """(warmup ops, victim batch) over a small vertex universe."""
    n = draw(st.integers(4, 12))
    live: set = set()
    ops = []
    for _ in range(draw(st.integers(0, 3))):
        if draw(st.booleans()) or not live:
            fresh: set = set()
            for _ in range(12):
                u, v = draw(st.integers(0, n - 1)), draw(st.integers(0, n - 1))
                if u != v:
                    e = norm_edge(u, v)
                    if e not in live and e not in fresh:
                        fresh.add(e)
                if len(fresh) >= 5:
                    break
            if fresh:
                live |= fresh
                ops.append(("insert", tuple(sorted(fresh))))
        else:
            pool = sorted(live)
            k = draw(st.integers(1, len(pool)))
            victims = tuple(pool[:k])
            live -= set(victims)
            ops.append(("delete", victims))
    # the victim batch the fault targets
    if live and draw(st.booleans()):
        pool = sorted(live)
        k = draw(st.integers(1, len(pool)))
        victim = ("delete", tuple(pool[:k]))
    else:
        fresh = set()
        for _ in range(12):
            u, v = draw(st.integers(0, n - 1)), draw(st.integers(0, n - 1))
            if u != v:
                e = norm_edge(u, v)
                if e not in live and e not in fresh:
                    fresh.add(e)
            if len(fresh) >= 4:
                break
        if not fresh:
            fresh = {
                e
                for i in range(n)
                for j in range(i + 1, n)
                if (e := norm_edge(i, j)) not in live
            }
            fresh = set(sorted(fresh)[:1])
        assume(fresh)
        victim = ("insert", tuple(sorted(fresh)))
    return n, ops, victim


def _apply(structure, op):
    kind, edges = op
    if kind == "insert":
        structure.insert_batch(edges)
    else:
        structure.delete_batch(edges)


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    sched=schedules(),
    site=st.sampled_from(SITE_LIST),
    hit=st.integers(1, 6),
    use_ladder=st.booleans(),
)
def test_guarded_batches_are_atomic(sched, site, hit, use_ladder):
    n, warmup, victim = sched
    if use_ladder:
        structure = CorenessDecomposition(n, eps=0.4, seed=1)
    else:
        structure = BalancedOrientation(3)
    for op in warmup:
        _apply(structure, op)
    structure.check_invariants()
    before = capture(structure)

    injector = FaultInjector([FaultSpec(site, hit=hit, action="raise")])
    fired = False
    with injecting(injector):
        try:
            with guarded(structure):
                _apply(structure, victim)
        except FaultInjected:
            fired = True

    structure.check_invariants()
    if fired:
        # strong exception safety: state is exactly the pre-batch state
        assert capture(structure) == before
        # and the batch succeeds on retry (the fault was transient)
        _apply(structure, victim)
        structure.check_invariants()
    else:
        # fault never reached: the batch must have applied normally
        clean = (
            CorenessDecomposition(n, eps=0.4, seed=1)
            if use_ladder
            else BalancedOrientation(3)
        )
        for op in warmup:
            _apply(clean, op)
        _apply(clean, victim)
        assert capture(structure) == capture(clean)
