"""Fault injector: spec validation, determinism, one-shot firing, actions."""

import pytest

from repro.core.balanced import BalancedOrientation
from repro.errors import FaultInjected, ParameterError
from repro.resilience import faults
from repro.resilience.faults import ACTIONS, SITES, FaultInjector, FaultSpec, injecting


class TestFaultSpec:
    def test_unknown_site_rejected(self):
        with pytest.raises(ParameterError, match="unknown fault site"):
            FaultSpec("tokens.drop.typo")

    def test_unknown_action_rejected(self):
        with pytest.raises(ParameterError, match="unknown fault action"):
            FaultSpec("tokens.drop.phase", action="explode")

    def test_hit_must_be_positive(self):
        with pytest.raises(ParameterError, match="hit must be"):
            FaultSpec("tokens.drop.phase", hit=0)

    def test_catalogue_covers_all_layers(self):
        prefixes = {site.split(".")[0] for site in SITES}
        assert prefixes == {"tokens", "bundles", "pbst", "hashtable"}


class TestInjector:
    def test_disabled_by_default(self):
        assert faults.ACTIVE is None

    def test_fire_unknown_site_rejected(self):
        with pytest.raises(ParameterError):
            FaultInjector().fire("not.a.site")

    def test_one_shot_then_disarmed(self):
        inj = FaultInjector([FaultSpec("bundles.extract", hit=2)])
        inj.fire("bundles.extract")  # hit 1: no match
        with pytest.raises(FaultInjected) as excinfo:
            inj.fire("bundles.extract")  # hit 2: fires
        assert excinfo.value.site == "bundles.extract"
        assert excinfo.value.hit == 2
        inj.fire("bundles.extract")  # hit 3: spec disarmed, nothing happens
        assert inj.fired == [("bundles.extract", 2, "raise")]
        assert inj.pending == []

    def test_plan_is_deterministic(self):
        a = FaultInjector.plan(seed=7, count=5)
        b = FaultInjector.plan(seed=7, count=5)
        assert a.specs == b.specs
        c = FaultInjector.plan(seed=8, count=5)
        assert a.specs != c.specs  # overwhelmingly likely
        for spec in a.specs:
            assert spec.site in SITES and spec.action in ACTIONS

    def test_injecting_restores_previous(self):
        outer, inner = FaultInjector(), FaultInjector()
        assert faults.ACTIVE is None
        with injecting(outer):
            assert faults.ACTIVE is outer
            with injecting(inner):
                assert faults.ACTIVE is inner
            assert faults.ACTIVE is outer
        assert faults.ACTIVE is None

    def test_injecting_restores_on_exception(self):
        inj = FaultInjector([FaultSpec("tokens.drop.phase", hit=1)])
        st = BalancedOrientation(3)
        with pytest.raises(FaultInjected):
            with injecting(inj):
                st.insert_batch([(0, 1), (0, 2)])
        assert faults.ACTIVE is None


class TestActions:
    def test_delay_charges_cost_model(self):
        st = BalancedOrientation(3)
        inj = FaultInjector(
            [FaultSpec("tokens.drop.phase", hit=1, action="delay", delay_work=500)]
        )
        before = st.cm.snapshot()
        with injecting(inj):
            st.insert_batch([(0, 1), (1, 2)])
        after = st.cm.snapshot()
        assert after.work - before.work >= 500
        assert st.cm.counters.get("fault_delays") == 1
        st.check_invariants()  # delay never corrupts

    def test_corrupt_breaks_an_invariant(self):
        st = BalancedOrientation(2)
        st.insert_batch([(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
        inj = FaultInjector(
            [FaultSpec("tokens.drop.settle", hit=1, action="corrupt")], seed=3
        )
        with injecting(inj):
            st.insert_batch([(0, 3), (0, 4), (1, 4)])
        assert inj.fired, "corrupt spec never fired"
        assert st.cm.counters.get("fault_corruptions") == 1

    def test_raise_is_transient(self):
        """After the one-shot raise, the same batch succeeds on retry."""
        st = BalancedOrientation(3)
        inj = FaultInjector([FaultSpec("tokens.drop.phase", hit=1)])
        with injecting(inj):
            with pytest.raises(FaultInjected):
                st.insert_batch([(0, 1), (0, 2)])


class TestSiteCoverage:
    def test_substrate_sites_reachable(self):
        from repro.hashtable.batch_table import BatchHashTable
        from repro.pbst.batch_set import BatchOrderedSet

        for site, trigger in [
            ("pbst.batch_insert", lambda: BatchOrderedSet(items=[1, 2])),
            ("pbst.batch_delete", lambda: BatchOrderedSet(items=[1]).batch_delete([1])),
            ("hashtable.batch_set", lambda: BatchHashTable(items={1: 2})),
            (
                "hashtable.batch_delete",
                lambda: BatchHashTable(items={1: 2}).batch_delete([1]),
            ),
        ]:
            inj = FaultInjector([FaultSpec(site, hit=1)])
            with injecting(inj):
                with pytest.raises(FaultInjected):
                    trigger()
                    # constructors fire on the initial batch; deletes on their own
                    raise AssertionError(f"site {site} never fired")

    def test_token_and_bundle_sites_reachable(self):
        edges = [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (0, 3)]
        for site in ("tokens.drop.phase", "tokens.drop.settle", "bundles.extract"):
            st = BalancedOrientation(2)
            inj = FaultInjector([FaultSpec(site, hit=1)])
            with injecting(inj):
                with pytest.raises(FaultInjected):
                    st.insert_batch(edges)
        for site in ("tokens.push.phase", "tokens.push.settle", "bundles.partition"):
            st = BalancedOrientation(2)
            st.insert_batch(edges)
            inj = FaultInjector([FaultSpec(site, hit=1)])
            with injecting(inj):
                with pytest.raises(FaultInjected):
                    st.delete_batch(edges[:4])
