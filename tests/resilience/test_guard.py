"""Transactional guard: capture/rollback give strong exception safety."""

import pytest

from repro.core.balanced import BalancedOrientation
from repro.core.coreness import CorenessDecomposition
from repro.core.density import DensityEstimator
from repro.errors import FaultInjected, ParameterError
from repro.resilience.faults import FaultInjector, FaultSpec, injecting
from repro.resilience.guard import Transactional, capture, guarded, rollback

EDGES = [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (0, 3), (3, 4), (2, 4)]


def _populated(cls):
    if cls is BalancedOrientation:
        st = BalancedOrientation(3)
    else:
        st = cls(12, eps=0.35, seed=2)
    st.insert_batch(EDGES[:5])
    st.delete_batch(EDGES[1:3])
    return st


@pytest.mark.parametrize(
    "cls", [BalancedOrientation, CorenessDecomposition, DensityEstimator]
)
class TestRollback:
    def test_rollback_restores_logical_state(self, cls):
        st = _populated(cls)
        snap = capture(st)
        st.insert_batch(EDGES[5:])
        rollback(st, snap)
        assert capture(st) == snap
        st.check_invariants()

    def test_guarded_rolls_back_and_reraises(self, cls):
        st = _populated(cls)
        snap = capture(st)
        inj = FaultInjector([FaultSpec("tokens.drop.phase", hit=1)])
        with injecting(inj):
            with pytest.raises(FaultInjected):
                with guarded(st):
                    st.insert_batch(EDGES[5:])
        assert capture(st) == snap
        st.check_invariants()
        assert st.cm.counters.get("guard_rollbacks") == 1

    def test_updates_continue_after_rollback(self, cls):
        st = _populated(cls)
        snap = capture(st)
        try:
            with guarded(st):
                st.insert_batch(EDGES[5:])
                raise RuntimeError("mid-batch crash")
        except RuntimeError:
            pass
        assert capture(st) == snap
        st.insert_batch(EDGES[5:])  # the retry
        st.check_invariants()
        clean = _populated(cls)
        clean.insert_batch(EDGES[5:])
        assert capture(st) == capture(clean)

    def test_guarded_mixin_methods(self, cls):
        st = _populated(cls)
        assert isinstance(st, Transactional)
        st.guarded_insert_batch(EDGES[5:7])
        st.guarded_delete_batch(EDGES[5:6])
        st.guarded_update_batch(insertions=[EDGES[5]], deletions=[EDGES[6]])
        st.check_invariants()


def test_capture_rejects_unknown_objects():
    with pytest.raises(ParameterError, match="cannot capture"):
        capture(object())


def test_guarded_passes_through_on_success():
    st = BalancedOrientation(3)
    with guarded(st):
        st.insert_batch(EDGES[:4])
    st.check_invariants()
    assert "guard_rollbacks" not in st.cm.counters
