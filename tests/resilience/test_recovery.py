"""Tiered recovery: rollback, checkpoint replay, rebuild, restart."""

import pytest

from repro.core.balanced import BalancedOrientation
from repro.core.coreness import CorenessDecomposition
from repro.errors import BatchError, RecoveryError, TraceError
from repro.graphs.streams import BatchOp, churn
from repro.resilience.faults import FaultInjector, FaultSpec, injecting
from repro.resilience.recovery import RecoveryManager

OPS = churn(20, 24, 5, seed=13)


def _manager(structure="balanced", **kwargs):
    if structure == "balanced":
        st = BalancedOrientation(4)
    else:
        st = CorenessDecomposition(20, eps=0.35, seed=2)
    kwargs.setdefault("checkpoint_every", 5)
    return RecoveryManager(st, **kwargs)


class TestCleanPath:
    def test_all_ok_without_faults(self):
        mgr = _manager()
        assert [mgr.apply(op) for op in OPS] == ["ok"] * len(OPS)
        assert mgr.audit().ok
        assert mgr.stats.counts == {"ok": len(OPS)}
        assert mgr.stats.recoveries == 0

    def test_invalid_batch_raises_without_touching_state(self):
        mgr = _manager()
        mgr.apply(BatchOp("insert", ((0, 1), (1, 2))))
        before = set(mgr.graph.edges)
        with pytest.raises(BatchError):
            mgr.apply(BatchOp("insert", ((0, 1),)))  # already live
        with pytest.raises(BatchError):
            mgr.apply(BatchOp("delete", ((5, 6),)))  # absent
        assert mgr.graph.edges == before
        assert mgr.audit().ok


class TestTiers:
    def test_raise_fault_resolved_by_rollback(self):
        mgr = _manager()
        inj = FaultInjector([FaultSpec("tokens.drop.phase", hit=2)])
        with injecting(inj):
            outcomes = [mgr.apply(op) for op in OPS]
        assert outcomes.count("rollback") == 1
        assert inj.fired
        assert mgr.audit().ok

    def test_corruption_resolved_by_checkpoint_replay(self):
        mgr = _manager()
        inj = FaultInjector(
            [FaultSpec("tokens.drop.settle", hit=3, action="corrupt")], seed=5
        )
        with injecting(inj):
            outcomes = [mgr.apply(op) for op in OPS]
        assert inj.fired
        assert set(outcomes) <= {"ok", "checkpoint", "rebuild"}
        assert outcomes.count("ok") < len(OPS)
        assert mgr.audit().ok
        assert mgr.cm.counters.get("recovery_tier2_replays", 0) >= 1

    def test_fault_burst_escalates_to_rebuild(self):
        mgr = _manager()
        specs = [
            FaultSpec("tokens.drop.phase", hit=h) for h in range(3, 9)
        ]
        with injecting(FaultInjector(specs)):
            outcomes = [mgr.apply(op) for op in OPS]
        assert "rebuild" in outcomes
        assert mgr.audit().ok
        assert mgr.cm.counters.get("recovery_rebuild_attempts", 0) >= 1

    def test_ladder_recovers_too(self):
        mgr = _manager("coreness")
        specs = [FaultSpec("tokens.drop.phase", hit=h) for h in range(4, 10)]
        with injecting(FaultInjector(specs)):
            outcomes = [mgr.apply(op) for op in OPS]
        assert set(outcomes) > {"ok"}
        assert mgr.audit().ok
        mgr.structure.check_invariants()

    def test_unbounded_burst_raises_recovery_error(self):
        mgr = _manager(max_recovery_rounds=2, max_rebuild_attempts=1)
        # every traversal of the site faults: recovery can never finish
        specs = [FaultSpec("tokens.drop.phase", hit=h) for h in range(1, 400)]
        with injecting(FaultInjector(specs)):
            with pytest.raises(RecoveryError):
                for op in OPS:
                    mgr.apply(op)


class TestRestart:
    def test_save_load_roundtrip(self, tmp_path):
        mgr = _manager()
        for op in OPS:
            mgr.apply(op)
        mgr.save(tmp_path)
        loaded = RecoveryManager.load(tmp_path)
        assert loaded.graph.edges == mgr.graph.edges
        assert loaded.audit().ok
        assert len(loaded.history) == len(mgr.history)

    def test_load_replays_suffix_through_recovery(self, tmp_path):
        mgr = _manager()
        for op in OPS[:10]:
            mgr.apply(op)
        mgr.save(tmp_path)
        # tamper: pretend the checkpoint is older than the WAL tail
        import json

        image = json.loads((tmp_path / "checkpoint.json").read_text())
        assert image["position"] == 10
        loaded = RecoveryManager.load(tmp_path)
        for op in OPS[10:]:
            loaded.apply(op)
        direct = _manager()
        for op in OPS:
            direct.apply(op)
        assert loaded.graph.edges == direct.graph.edges
        assert loaded.audit().ok

    def test_torn_wal_is_rejected(self, tmp_path):
        mgr = _manager()
        for op in OPS[:6]:
            mgr.apply(op)
        mgr.save(tmp_path)
        wal = tmp_path / "wal.trace"
        text = wal.read_text().splitlines()
        wal.write_text("\n".join(text[:-1]) + "\n")  # drop the footer
        with pytest.raises(TraceError):
            RecoveryManager.load(tmp_path)

    def test_position_beyond_wal_is_rejected(self, tmp_path):
        import json

        mgr = _manager()
        for op in OPS[:6]:
            mgr.apply(op)
        mgr.save(tmp_path)
        image = json.loads((tmp_path / "checkpoint.json").read_text())
        image["position"] = 999
        (tmp_path / "checkpoint.json").write_text(json.dumps(image))
        with pytest.raises(BatchError, match="position"):
            RecoveryManager.load(tmp_path)

    def test_wal_written_incrementally(self, tmp_path):
        wal_path = tmp_path / "live.trace"
        mgr = _manager(wal_path=wal_path)
        for op in OPS[:4]:
            mgr.apply(op)
        # unsealed while live: strict readers refuse it
        from repro.graphs.tracefile import read_trace

        with pytest.raises(TraceError):
            read_trace(wal_path, strict=True)
        assert len(read_trace(wal_path)) == 4  # tolerant read sees the batches
        mgr.close()
        assert len(read_trace(wal_path, strict=True)) == 4


class TestBoundedHistory:
    """``bounded_history=True`` trims the committed prefix at checkpoints."""

    def test_history_stays_window_sized(self):
        mgr = _manager(bounded_history=True, checkpoint_every=5)
        for op in OPS:
            mgr.apply(op)
            assert len(mgr.history) < 2 * 5
        assert mgr.applied == len(OPS)
        assert len(mgr.history) < len(OPS)
        assert mgr.audit().ok

    def test_answers_match_unbounded(self):
        bounded = _manager(bounded_history=True)
        full = _manager()
        for op in OPS:
            bounded.apply(op)
            full.apply(op)
        assert bounded.graph.edges == full.graph.edges
        b, f = bounded.structure, full.structure
        assert set(b.tail_of) == set(f.tail_of)

    def test_recovery_tiers_still_work_after_trim(self):
        mgr = _manager(bounded_history=True, checkpoint_every=3)
        inj = FaultInjector(
            [
                FaultSpec("tokens.drop.phase", hit=2),
                FaultSpec("tokens.drop.settle", hit=2, action="corrupt"),
            ],
            seed=7,
        )
        with injecting(inj):
            outcomes = [mgr.apply(op) for op in OPS]
        assert len(inj.fired) == 2
        assert set(outcomes) > {"ok"}
        assert mgr.audit().ok

    def test_save_refuses_once_trimmed(self, tmp_path):
        mgr = _manager(bounded_history=True, checkpoint_every=3)
        for op in OPS[:2]:  # before the first checkpoint nothing is lost
            mgr.apply(op)
        mgr.save(tmp_path / "early")
        for op in OPS[2:]:
            mgr.apply(op)
        with pytest.raises(BatchError, match="bounded-history"):
            mgr.save(tmp_path / "late")
