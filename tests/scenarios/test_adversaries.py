"""Property tests holding every adversary to the generator contract.

The contract (module docstring of ``repro.scenarios.adversaries``):
every generator emits a *valid* temporal stream, is deterministic under
its seed, never exceeds ``batch_size`` per batch or ``batches`` total,
and — for ``bounded_window`` scenarios — keeps the live-edge set bounded
independently of the stream length.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.tracefile import validate_trace
from repro.scenarios import (
    ScenarioParams,
    get_scenario,
    scenario_names,
    scenario_stream,
)

names = st.sampled_from(scenario_names())
params = st.builds(
    ScenarioParams,
    n=st.integers(min_value=8, max_value=48),
    batches=st.integers(min_value=1, max_value=40),
    batch_size=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=2**16),
    window=st.integers(min_value=1, max_value=6),
    hint_factor=st.sampled_from([0.5, 1.0, 2.0, 4.0]),
)


def _live_high_water(ops) -> int:
    live: set = set()
    high = 0
    for op in ops:
        if op.kind == "insert":
            live |= set(op.edges)
        else:
            live -= set(op.edges)
        high = max(high, len(live))
    return high


@given(name=names, p=params)
@settings(max_examples=60, deadline=None)
def test_stream_is_valid_and_within_budget(name, p):
    ops = list(scenario_stream(name, p))
    validate_trace(ops)  # inserts absent, deletes present, no in-batch dups
    assert len(ops) <= p.batches
    assert all(1 <= op.size <= p.batch_size for op in ops)
    assert all(max(max(e) for e in op.edges) < p.n for op in ops)


@given(name=names, p=params)
@settings(max_examples=40, deadline=None)
def test_deterministic_under_seed(name, p):
    assert list(scenario_stream(name, p)) == list(scenario_stream(name, p))


@given(p=params)
@settings(max_examples=40, deadline=None)
def test_window_bound_respected(p):
    ops = list(scenario_stream("sliding-window-churn", p))
    assert _live_high_water(ops) <= p.window * p.batch_size


@given(p=params)
@settings(max_examples=20, deadline=None)
def test_core_oscillation_live_set_bounded(p):
    """The other bounded_window scenario: live set independent of batches.

    Bound = the clique core plus one fully-attached boundary set —
    a function of ``(n, batch_size)`` only, never of stream length.
    """
    from repro.scenarios.adversaries import _oscillation_threshold

    k = _oscillation_threshold(p)
    boundary = max(1, p.batch_size // k)
    bound = k * (k - 1) // 2 + boundary * k
    assert _live_high_water(scenario_stream("core-oscillation", p)) <= bound
    assert get_scenario("core-oscillation").bounded_window


def test_hint_misestimation_mixes_inserts_and_deletes():
    p = ScenarioParams(n=24, batches=30, batch_size=4)
    kinds = {op.kind for op in scenario_stream("hint-misestimation", p)}
    assert kinds == {"insert", "delete"}


def test_skew_flip_changes_phase_mid_stream():
    p = ScenarioParams(n=32, batches=24, batch_size=4, seed=3)
    ops = list(scenario_stream("skew-flip", p))
    half = len(ops) // 2
    assert all(op.kind == "insert" for op in ops[:half])
    assert any(op.kind == "delete" for op in ops[half:])
