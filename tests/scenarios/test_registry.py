"""Tests for the scenario catalog (registry, params, scales)."""

import pytest

from repro.errors import ParameterError
from repro.scenarios import (
    SCALES,
    Scenario,
    ScenarioParams,
    get_scenario,
    params_for,
    scenario_names,
    scenario_stream,
    suggested_height,
)
from repro.scenarios.registry import register_scenario

EXPECTED = {
    "core-oscillation",
    "hint-misestimation",
    "skew-flip",
    "sliding-window-churn",
}


class TestCatalog:
    def test_all_four_adversaries_registered(self):
        assert EXPECTED <= set(scenario_names())

    def test_names_sorted(self):
        assert scenario_names() == sorted(scenario_names())

    def test_get_unknown_raises(self):
        with pytest.raises(ParameterError, match="unknown scenario"):
            get_scenario("no-such-adversary")

    def test_duplicate_registration_rejected(self):
        existing = get_scenario("skew-flip")
        with pytest.raises(ParameterError, match="already registered"):
            register_scenario(
                Scenario(
                    name=existing.name,
                    summary="dup",
                    rationale="dup",
                    stream=existing.stream,
                )
            )

    def test_windowed_flags(self):
        assert get_scenario("sliding-window-churn").bounded_window
        assert get_scenario("core-oscillation").bounded_window
        assert not get_scenario("hint-misestimation").bounded_window
        assert not get_scenario("skew-flip").bounded_window


class TestParams:
    def test_validation(self):
        with pytest.raises(ParameterError):
            ScenarioParams(n=4, batches=10, batch_size=2)
        with pytest.raises(ParameterError):
            ScenarioParams(n=16, batches=0, batch_size=2)
        with pytest.raises(ParameterError):
            ScenarioParams(n=16, batches=10, batch_size=2, window=0)
        with pytest.raises(ParameterError):
            ScenarioParams(n=16, batches=10, batch_size=2, hint_factor=0)

    def test_edge_budget(self):
        assert ScenarioParams(n=16, batches=7, batch_size=3).edge_budget == 21

    def test_params_for_overrides(self):
        p = params_for("tiny", seed=9, batch_size=2)
        assert p.seed == 9
        assert p.batch_size == 2
        assert p.n == SCALES["tiny"].n

    def test_unknown_scale_raises(self):
        with pytest.raises(ParameterError, match="unknown scale"):
            params_for("galactic")

    def test_large_scale_is_a_million_updates(self):
        assert SCALES["large"].edge_budget == 10**6


class TestHints:
    def test_default_height_for_unhinted_scenarios(self):
        p = params_for("tiny")
        assert suggested_height("sliding-window-churn", p, default=7) == 7

    def test_misestimation_hint_scales_with_factor(self):
        honest = params_for("bench", hint_factor=1.0)
        wrong = params_for("bench", hint_factor=4.0)
        assert suggested_height("hint-misestimation", honest) >= suggested_height(
            "hint-misestimation", wrong
        )
        assert suggested_height("hint-misestimation", wrong) >= 1

    def test_stream_dispatch(self):
        p = params_for("tiny")
        ops = list(scenario_stream("core-oscillation", p))
        assert ops
        assert ops == list(get_scenario("core-oscillation").stream(p))
