"""Tests for scenario soaks and the ``repro scenarios`` CLI."""

import pytest

from repro.cli import main
from repro.graphs.tracefile import iter_trace, scan_trace
from repro.instrument.metrics import ScenarioStats
from repro.instrument.telemetry import REGISTRY
from repro.scenarios import (
    params_for,
    render_scenario_summary,
    scenario_stream,
    soak_scenario,
)


class TestSoak:
    def test_both_machineries_green_at_tiny_scale(self):
        report = soak_scenario(
            "sliding-window-churn", scale="tiny", trials=2, faults_per_trial=1
        )
        assert report.ok
        assert report.chaos is not None and report.chaos.ok
        assert report.diff is not None and report.diff.ok
        assert report.stats.batches > 0
        text = report.render()
        assert "GREEN" in text and "sliding-window-churn" in text

    def test_chaos_only_mode_skips_diff(self):
        report = soak_scenario(
            "core-oscillation", scale="tiny", mode="chaos", trials=1,
            faults_per_trial=1,
        )
        assert report.chaos is not None
        assert report.diff is None

    def test_diff_only_mode_skips_chaos(self):
        report = soak_scenario("core-oscillation", scale="tiny", mode="diff")
        assert report.chaos is None
        assert report.diff is not None

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown soak mode"):
            soak_scenario("skew-flip", scale="tiny", mode="everything")

    def test_misestimation_soak_uses_the_wrong_hint(self):
        report = soak_scenario(
            "hint-misestimation", scale="tiny", mode="chaos", trials=1,
            faults_per_trial=0,
        )
        honest = soak_scenario(
            "hint-misestimation", scale="tiny", mode="chaos", trials=1,
            faults_per_trial=0,
            params=params_for("tiny", hint_factor=1.0),
        )
        assert report.suggested_H <= honest.suggested_H
        assert report.ok  # wrong hint degrades cost, not correctness

    def test_summary_table_lists_every_report(self):
        reports = [
            soak_scenario(name, scale="tiny", mode="diff")
            for name in ("skew-flip", "core-oscillation")
        ]
        table = render_scenario_summary(reports)
        assert "skew-flip" in table and "core-oscillation" in table
        assert "diff" in table

    def test_stats_published_to_registry(self):
        REGISTRY.clear()
        stats = ScenarioStats(scenario="probe")
        stats.observe("insert", 5)
        stats.observe("delete", 2)
        assert stats.max_live_edges == 5
        assert stats.live_edges == 3
        assert (
            REGISTRY.counter("repro_scenario_batches_total", scenario="probe").value
            == 2
        )
        assert (
            REGISTRY.counter(
                "repro_scenario_edge_updates_total", scenario="probe"
            ).value
            == 7
        )


class TestScenariosCli:
    def test_list(self, capsys):
        assert main(["scenarios", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("hint-misestimation", "sliding-window-churn"):
            assert name in out

    def test_soak_exit_code_green(self, capsys):
        rc = main(
            ["scenarios", "--scenario", "core-oscillation", "--scale", "tiny",
             "--trials", "1", "--faults", "1"]
        )
        assert rc == 0
        assert "GREEN" in capsys.readouterr().out

    def test_trace_out_spills_sealed_stream(self, tmp_path, capsys):
        out = tmp_path / "window.trace"
        rc = main(
            ["scenarios", "--scenario", "sliding-window-churn", "--scale",
             "tiny", "--seed", "5", "--trace-out", str(out)]
        )
        assert rc == 0
        assert "spilled" in capsys.readouterr().out
        expected = list(
            scenario_stream("sliding-window-churn", params_for("tiny", seed=5))
        )
        assert list(iter_trace(out, strict=True)) == expected
        info = scan_trace(out, strict=True)
        assert info.batches == len(expected)

    def test_trace_out_requires_explicit_scenario(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["scenarios", "--trace-out", str(tmp_path / "x.trace")])

    def test_chaos_cli_accepts_scenario_streams(self, capsys):
        # satellite: the chaos harness itself can rotate scenario streams
        from repro.resilience.chaos import chaos_soak

        report = chaos_soak(
            "balanced", trials=2, n=20, batches=8, batch_size=4,
            faults_per_trial=1, stream_kinds=["skew-flip", "sliding-window-churn"],
        )
        assert report.trials == 2
        assert report.ok, report.render()
