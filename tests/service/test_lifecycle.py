"""Process-level lifecycle tests: kill -9 recovery and metrics serving.

The recovery contract under test end to end: every batch the service
*acked* before dying (even by ``SIGKILL``, mid-ingest, with applies
still queued) is recovered on restart — the recovered tenant answers
bit-identically to a serial replay of exactly the acked prefix.

Plus the metrics-server lifecycle regressions: a taken port dies with
one clean line (it used to dump a raw ``OSError`` traceback), and
``--metrics-linger`` keeps ``repro run``'s metrics endpoint scrapeable
after short replays (it used to vanish the instant the replay ended).
"""

from __future__ import annotations

import asyncio
import os
import pathlib
import re
import signal
import socket
import subprocess
import sys
import urllib.request

from repro.graphs.tracefile import write_trace
from repro.service.state import TenantConfig

from .test_state import churn_batches, oracle_answers

REPO = pathlib.Path(__file__).resolve().parents[2]
ENV = dict(os.environ, PYTHONPATH=str(REPO / "src"))
SERVE = [sys.executable, "-m", "repro.cli", "serve"]


def start_serve(data_dir, *extra) -> tuple[subprocess.Popen, int]:
    proc = subprocess.Popen(
        [*SERVE, "--data-dir", str(data_dir), "--port", "0", *extra],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=ENV,
        cwd=REPO,
    )
    line = proc.stdout.readline()
    match = re.search(r"listening on [\d.]+:(\d+)", line)
    assert match, f"no ready line, got {line!r} (stderr: {proc.stderr.read()})"
    return proc, int(match.group(1))


def busy_port() -> tuple[socket.socket, int]:
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    sock.listen(1)
    return sock, sock.getsockname()[1]


class TestKillRecovery:
    def test_sigkill_mid_ingest_recovers_every_acked_batch(self, tmp_path):
        cfg = TenantConfig(n=32, eps=0.35, seed=13)
        batches = churn_batches(cfg.n, seed=5, count=10, size=5)
        oracle = oracle_answers(cfg, batches)
        proc, port = start_serve(tmp_path, "--checkpoint-every", "3")

        async def ingest_all() -> int:
            from repro.service import ServiceClient

            client = await ServiceClient.open("127.0.0.1", port)
            await client.create(
                "t", n=cfg.n, eps=cfg.eps, seed=cfg.seed
            )
            acked = 0
            for op in batches:
                resp = await client.ingest("t", op.kind, op.edges)
                acked = resp["position"]
            # deliberately no drain(): applies may still be queued when
            # the SIGKILL lands — only the *acks* are promised.
            await client.close()
            return acked

        try:
            acked = asyncio.run(ingest_all())
            assert acked == len(batches)
        finally:
            proc.kill()  # SIGKILL: no drain, no seal, no checkpoint
            proc.communicate(timeout=30)

        proc2, port2 = start_serve(tmp_path)

        async def query_all():
            from repro.service import ServiceClient

            client = await ServiceClient.open("127.0.0.1", port2)
            resp = await client.query("t", "coreness")
            dresp = await client.query("t", "density")
            await client.close()
            return resp, dresp

        try:
            resp, dresp = asyncio.run(query_all())
            assert resp["epoch"] == len(batches)
            assert {
                int(v): c for v, c in resp["coreness"].items()
            } == oracle[len(batches)][0]
            assert dresp["density"] == oracle[len(batches)][1]
        finally:
            proc2.send_signal(signal.SIGTERM)
            _, err = proc2.communicate(timeout=30)
        assert proc2.returncode == 0, err
        assert "drained and stopped" in err


class TestMetricsServerLifecycle:
    def test_serve_port_in_use_is_one_clean_line(self, tmp_path):
        sock, port = busy_port()
        try:
            proc = subprocess.run(
                [*SERVE, "--data-dir", str(tmp_path), "--port", str(port)],
                capture_output=True,
                text=True,
                env=ENV,
                cwd=REPO,
                timeout=120,
            )
        finally:
            sock.close()
        assert proc.returncode != 0
        assert "already in use" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_metrics_port_in_use_is_one_clean_line(self, tmp_path):
        """The regression: ``repro run --serve-metrics <taken>`` used to
        die with a raw OSError traceback."""
        trace = tmp_path / "tiny.trace"
        write_trace(churn_batches(16, seed=1, count=3, size=3), trace)
        sock, port = busy_port()
        try:
            proc = subprocess.run(
                [sys.executable, "-m", "repro.cli", "run",
                 "--trace", str(trace), "--serve-metrics", str(port)],
                capture_output=True,
                text=True,
                env=ENV,
                cwd=REPO,
                timeout=120,
            )
        finally:
            sock.close()
        assert proc.returncode != 0
        assert "already in use" in proc.stderr
        assert "--serve-metrics 0" in proc.stderr  # points at the fix
        assert "Traceback" not in proc.stderr

    def test_metrics_linger_keeps_endpoint_scrapeable(self, tmp_path):
        """The regression: without linger the server closed the instant
        the replay finished, so short runs could never be scraped."""
        trace = tmp_path / "tiny.trace"
        write_trace(churn_batches(16, seed=2, count=3, size=3), trace)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "run",
             "--trace", str(trace), "--serve-metrics", "0",
             "--metrics-linger", "10"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=ENV,
            cwd=REPO,
        )
        try:
            url = re.search(
                r"(http://[\d.:]+/metrics)", proc.stderr.readline()
            ).group(1)
            # the linger announcement only prints after the replay + the
            # summary table — the old behaviour closed the server here.
            linger_line = proc.stderr.readline()
            assert "stay up" in linger_line
            body = urllib.request.urlopen(url, timeout=10).read().decode()
            assert "repro_batches_total" in body or "repro_" in body
        finally:
            proc.send_signal(signal.SIGINT)  # release the linger early
            out, _ = proc.communicate(timeout=30)
        assert proc.returncode == 0
        assert "metric" in out  # the summary table still printed
