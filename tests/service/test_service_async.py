"""Asyncio service tests: epoch-consistent reads, isolation, protocol.

The load-bearing guarantee under test: a query served *while* batches
are being ingested and applied always answers from one committed epoch —
the answers equal what a serial replay of exactly that epoch's prefix
produces, bit-identically, and epochs only move forward.  Readers never
block on writers (they read a published immutable snapshot), which is
the asynchronous-snapshot reads design of arXiv 2401.08015 at batch
granularity.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.errors import ServiceError
from repro.service import CorenessService, ServiceClient

from .test_state import churn_batches, oracle_answers
from repro.service.state import TenantConfig

CFG = TenantConfig(n=40, eps=0.35, seed=9)


def run(coro):
    return asyncio.run(coro)


async def _start(tmp_path, **kw) -> CorenessService:
    svc = CorenessService(tmp_path, shards=2, **kw)
    await svc.start()
    return svc


class TestEpochConsistency:
    def test_reads_during_updates_see_whole_epochs(self, tmp_path):
        """Concurrent readers racing a live ingest stream always get the
        serial-oracle answers of the epoch they observe, and observe
        monotonically non-decreasing epochs."""
        batches = churn_batches(CFG.n, seed=1, count=14, size=5)
        oracle = oracle_answers(CFG, batches)

        async def body():
            svc = await _start(tmp_path)
            writer = await ServiceClient.open(*svc.address)
            await writer.create("t", n=CFG.n, eps=CFG.eps, seed=CFG.seed)
            stop = asyncio.Event()
            mismatches: list[int] = []
            observed: set[int] = set()

            async def reader():
                client = await ServiceClient.open(*svc.address)
                last = -1
                while not stop.is_set():
                    resp = await client.query("t", "coreness")
                    epoch = resp["epoch"]
                    assert epoch >= last, "epoch went backwards"
                    last = epoch
                    observed.add(epoch)
                    got = {int(v): c for v, c in resp["coreness"].items()}
                    if got != oracle[epoch][0]:
                        mismatches.append(epoch)
                    dresp = await client.query("t", "density")
                    if dresp["density"] != oracle[dresp["epoch"]][1]:
                        mismatches.append(dresp["epoch"])
                await client.close()

            readers = [asyncio.create_task(reader()) for _ in range(6)]
            for op in batches:
                await writer.ingest("t", op.kind, op.edges)
            await writer.drain()
            stop.set()
            await asyncio.gather(*readers)
            assert mismatches == [], f"inconsistent epochs: {mismatches}"
            # the readers genuinely raced the stream: saw >1 epoch
            assert len(observed) > 1
            final = await writer.query("t", "stats")
            assert final["epoch"] == len(batches)
            assert final["pending"] == 0
            await writer.close()
            await svc.stop()

        run(body())

    def test_wait_ingest_returns_the_committed_epoch(self, tmp_path):
        async def body():
            svc = await _start(tmp_path)
            client = await ServiceClient.open(*svc.address)
            await client.create("t", n=16, seed=2)
            resp = await client.ingest(
                "t", "insert", [(0, 1), (1, 2)], wait=True
            )
            assert resp["position"] == 1 and resp["epoch"] == 1
            query = await client.query("t", "coreness", vertices=[0, 1, 2])
            assert query["epoch"] >= 1
            await client.close()
            await svc.stop()

        run(body())


class TestTenantIsolation:
    def test_two_tenants_answer_like_two_solo_ladders(self, tmp_path):
        """Interleaved ingest across tenants with different parameters;
        each must answer exactly like a ladder that only ever saw its own
        stream — including after a restart of the whole service."""
        cfg_a = TenantConfig(n=24, eps=0.35, seed=3)
        cfg_b = TenantConfig(n=36, eps=0.45, seed=4)
        batches_a = churn_batches(cfg_a.n, seed=31, count=8, size=4)
        batches_b = churn_batches(cfg_b.n, seed=41, count=8, size=6)
        oracle_a = oracle_answers(cfg_a, batches_a)
        oracle_b = oracle_answers(cfg_b, batches_b)

        async def check(client, tenant, oracle, epoch):
            resp = await client.query(tenant, "coreness")
            assert resp["epoch"] == epoch
            assert {int(v): c for v, c in resp["coreness"].items()} == oracle[epoch][0]
            dresp = await client.query(tenant, "density")
            assert dresp["density"] == oracle[epoch][1]

        async def body():
            svc = await _start(tmp_path)
            client = await ServiceClient.open(*svc.address)
            await client.create("a", n=cfg_a.n, eps=cfg_a.eps, seed=cfg_a.seed)
            await client.create("b", n=cfg_b.n, eps=cfg_b.eps, seed=cfg_b.seed)
            for op_a, op_b in zip(batches_a, batches_b):
                await client.ingest("a", op_a.kind, op_a.edges)
                await client.ingest("b", op_b.kind, op_b.edges)
            await client.drain()
            await check(client, "a", oracle_a, len(batches_a))
            await check(client, "b", oracle_b, len(batches_b))
            await client.close()
            await svc.stop()
            # restart: both tenants recover independently
            svc2 = await _start(tmp_path)
            client2 = await ServiceClient.open(*svc2.address)
            await check(client2, "a", oracle_a, len(batches_a))
            await check(client2, "b", oracle_b, len(batches_b))
            await client2.close()
            await svc2.stop()

        run(body())


class TestProtocol:
    def test_errors_are_responses_not_disconnects(self, tmp_path):
        async def body():
            svc = await _start(tmp_path)
            client = await ServiceClient.open(*svc.address)
            with pytest.raises(ServiceError, match="unknown tenant"):
                await client.query("ghost", "stats")
            with pytest.raises(ServiceError, match="unknown op"):
                await client.request({"op": "frobnicate"})
            with pytest.raises(ServiceError, match="tenant names"):
                await client.create("../escape")
            await client.create("t", n=16, mode="coreness")
            with pytest.raises(ServiceError, match="does not maintain"):
                await client.query("t", "density")
            with pytest.raises(ServiceError, match="insert|delete"):
                await client.ingest("t", "upsert", [(0, 1)])
            # the connection survived every rejection
            assert (await client.ping())["ok"]
            await client.close()
            await svc.stop()

        run(body())

    def test_create_is_idempotent_but_param_changes_are_not(self, tmp_path):
        async def body():
            svc = await _start(tmp_path)
            client = await ServiceClient.open(*svc.address)
            first = await client.create("t", n=16, seed=1)
            again = await client.create("t", n=16, seed=1)
            assert first["created"] and not again["created"]
            with pytest.raises(ServiceError, match="different parameters"):
                await client.create("t", n=32, seed=1)
            await client.close()
            await svc.stop()

        run(body())

    def test_tenants_listing_and_drain(self, tmp_path):
        async def body():
            svc = await _start(tmp_path)
            client = await ServiceClient.open(*svc.address)
            await client.create("x", n=16, seed=1)
            await client.ingest("x", "insert", [(0, 1), (1, 2)])
            await client.drain()
            listing = (await client.tenants())["tenants"]
            assert listing["x"]["epoch"] == 1
            assert listing["x"]["pending"] == 0
            assert listing["x"]["live_edges"] == 2
            await client.close()
            await svc.stop()

        run(body())

    def test_stop_drains_accepted_batches(self, tmp_path):
        """Accepted-but-unapplied work is committed by a graceful stop,
        and the sealed state recovers to the full stream."""
        batches = churn_batches(CFG.n, seed=7, count=6, size=4)
        oracle = oracle_answers(CFG, batches)

        async def body():
            svc = await _start(tmp_path)
            client = await ServiceClient.open(*svc.address)
            await client.create("t", n=CFG.n, eps=CFG.eps, seed=CFG.seed)
            for op in batches:
                await client.ingest("t", op.kind, op.edges)
            await client.close()
            await svc.stop()  # no explicit drain: stop() must do it
            svc2 = await _start(tmp_path)
            client2 = await ServiceClient.open(*svc2.address)
            resp = await client2.query("t", "coreness")
            assert resp["epoch"] == len(batches)
            assert {
                int(v): c for v, c in resp["coreness"].items()
            } == oracle[len(batches)][0]
            await client2.close()
            await svc2.stop()

        run(body())

    def test_malformed_inputs_answer_not_disconnect(self, tmp_path):
        """Regression: non-numeric ``n``/``vertices`` used to escape as a
        raw ValueError/TypeError, dropping the connection with no
        response.  Every malformed request must answer {ok: false}."""
        async def body():
            svc = await _start(tmp_path)
            client = await ServiceClient.open(*svc.address)
            with pytest.raises(ServiceError, match="bad tenant parameters"):
                await client.request(
                    {"op": "create", "tenant": "t", "n": "abc"}
                )
            await client.create("t", n=16, seed=1)
            with pytest.raises(ServiceError, match="vertex ids must be ints"):
                await client.request(
                    {"op": "query", "tenant": "t", "what": "coreness",
                     "vertices": ["x"]}
                )
            with pytest.raises(ServiceError, match="list of vertex ids"):
                await client.request(
                    {"op": "query", "tenant": "t", "what": "orientation",
                     "vertices": "0"}
                )
            # a genuine bug past validation still answers, not disconnects
            async def buggy(req):
                raise RuntimeError("injected dispatch bug")
            svc._dispatch = buggy
            with pytest.raises(ServiceError, match="internal error"):
                await client.ping()
            del svc._dispatch  # restore the real dispatch
            assert (await client.ping())["ok"]  # the connection survived
            assert svc.registry.counter(
                "repro_service_internal_errors_total"
            ).value == 1
            await client.close()
            await svc.stop()

        run(body())

    def test_metrics_reflect_ingest_and_queries(self, tmp_path):
        async def body():
            svc = await _start(tmp_path)
            client = await ServiceClient.open(*svc.address)
            await client.create("t", n=16, seed=1)
            await client.ingest("t", "insert", [(0, 1), (1, 2)], wait=True)
            await client.query("t", "coreness")
            reg = svc.registry
            assert reg.counter(
                "repro_service_batches_ingested_total", tenant="t"
            ).value == 1
            assert reg.counter(
                "repro_service_edge_updates_total", tenant="t"
            ).value == 2
            assert reg.counter(
                "repro_service_batches_applied_total", tenant="t"
            ).value == 1
            assert reg.counter(
                "repro_service_queries_total", tenant="t", what="coreness"
            ).value == 1
            await client.close()
            await svc.stop()

        run(body())


class TestQuarantine:
    """Apply/recovery failures isolate one tenant, never the fleet.

    Regression: an apply failure on a no-wait ingest used to increment a
    counter and nothing else — the ack stood, later batches kept applying
    on top of the divergence, and the poisoned WAL then aborted the whole
    service's next boot.
    """

    def test_apply_failure_quarantines_tenant_not_service(self, tmp_path):
        async def body():
            svc = await _start(tmp_path)
            client = await ServiceClient.open(*svc.address)
            await client.create("good", n=16, seed=1)
            await client.create("bad", n=16, seed=1)

            def boom(op):
                raise RuntimeError("injected ladder fault")

            svc.tenants["bad"].apply = boom
            # the no-wait ack stands (the batch is durably in the WAL)...
            assert (await client.ingest("bad", "insert", [(0, 1)]))["ok"]
            await client.drain()
            # ...but the tenant is now loudly quarantined, not diverging
            with pytest.raises(ServiceError, match="quarantined"):
                await client.query("bad", "stats")
            with pytest.raises(ServiceError, match="quarantined"):
                await client.ingest("bad", "insert", [(1, 2)])
            listing = await client.tenants()
            assert listing["tenants"]["bad"]["quarantined"]
            assert "bad" in listing["quarantined"]
            assert not listing["tenants"]["good"]["quarantined"]
            # the healthy tenant is untouched
            resp = await client.ingest("good", "insert", [(0, 1)], wait=True)
            assert resp["epoch"] == 1
            await client.close()
            await svc.stop()

        run(body())

    def test_wait_ingest_surfaces_apply_failure(self, tmp_path):
        async def body():
            svc = await _start(tmp_path)
            client = await ServiceClient.open(*svc.address)
            await client.create("t", n=16, seed=1)

            def boom(op):
                raise RuntimeError("injected ladder fault")

            svc.tenants["t"].apply = boom
            with pytest.raises(ServiceError, match="apply failed"):
                await client.ingest("t", "insert", [(0, 1)], wait=True)
            await client.close()
            await svc.stop()

        run(body())

    def test_recovery_failure_quarantines_tenant_not_boot(self, tmp_path):
        """One tenant's unrecoverable on-disk state must not keep every
        other tenant's service from starting."""
        async def body():
            svc = await _start(tmp_path)
            client = await ServiceClient.open(*svc.address)
            await client.create("good", n=16, seed=1)
            await client.ingest("good", "insert", [(0, 1)], wait=True)
            await client.create("bad", n=16, seed=1)
            await client.close()
            await svc.stop()
            (tmp_path / "bad" / "meta.json").write_text("not json at all")
            svc2 = await _start(tmp_path)  # boots despite the bad tenant
            client2 = await ServiceClient.open(*svc2.address)
            resp = await client2.query("good", "coreness")
            assert resp["epoch"] == 1
            with pytest.raises(ServiceError, match="quarantined"):
                await client2.query("bad", "stats")
            with pytest.raises(ServiceError, match="quarantined"):
                await client2.create("bad", n=16, seed=1)
            await client2.close()
            await svc2.stop()

        run(body())


class TestBackpressure:
    def test_apply_backlog_is_bounded(self, tmp_path):
        """Regression: the apply queues were unbounded, so a fast writer
        accumulated arbitrary accepted-but-unapplied batches in memory.
        At ``max_pending`` the ack must stall until the lane drains."""
        async def body():
            svc = await _start(tmp_path, max_pending=2)
            client = await ServiceClient.open(*svc.address)
            await client.create("t", n=16, seed=1)
            gate = threading.Event()
            shard = svc.tenants["t"]
            real_apply = shard.apply

            def slow_apply(op):
                gate.wait(30)
                return real_apply(op)

            shard.apply = slow_apply
            clients = [
                await ServiceClient.open(*svc.address) for _ in range(6)
            ]
            tasks = [
                asyncio.create_task(
                    c.ingest("t", "insert", [(i, i + 1)])
                )
                for i, c in enumerate(clients)
            ]
            await asyncio.sleep(0.4)
            # at most 1 applying + max_pending queued acks went out; the
            # rest are stalled on the full lane (before the fix all 6
            # acked immediately)
            acked = sum(t.done() for t in tasks)
            assert acked <= 3, f"{acked} acks with a 2-deep lane"
            assert all(q.qsize() <= 2 for q in svc._queues)
            gate.set()
            await asyncio.gather(*tasks)
            await client.drain()
            stats = await client.query("t", "stats")
            assert stats["epoch"] == 6 and stats["pending"] == 0
            for c in clients:
                await c.close()
            await client.close()
            await svc.stop()

        run(body())
