"""TenantShard unit tests: validation, durability, recovery."""

from __future__ import annotations

import json
import random

import pytest

from repro.core.coreness import CorenessDecomposition
from repro.core.density import DensityEstimator
from repro.errors import BatchError, ParameterError
from repro.graphs.streams import BatchOp
from repro.instrument.work_depth import CostModel
from repro.service.state import (
    CHECKPOINT_NAME,
    TenantConfig,
    TenantShard,
    WAL_NAME,
    discover_tenants,
)


def churn_batches(n: int, seed: int, count: int, size: int) -> list[BatchOp]:
    """A deterministic insert/delete stream over the ``[0, n)`` universe."""
    rng = random.Random(seed)
    live: set[tuple[int, int]] = set()
    out: list[BatchOp] = []
    for i in range(count):
        if live and (rng.random() < 0.3 or len(live) > 4 * n):
            batch = rng.sample(sorted(live), min(size, len(live)))
            live.difference_update(batch)
            out.append(BatchOp("delete", tuple(batch)))
        else:
            batch: list[tuple[int, int]] = []
            while len(batch) < size:
                u, v = rng.randrange(n), rng.randrange(n)
                if u == v:
                    continue
                e = (min(u, v), max(u, v))
                if e in live or e in batch:
                    continue
                batch.append(e)
            live.update(batch)
            out.append(BatchOp("insert", tuple(batch)))
    return out


def oracle_answers(config: TenantConfig, batches: list[BatchOp]):
    """Serial replay through bare ladders — the ground truth a recovered
    or served tenant must match bit-identically."""
    cm = CostModel()
    core = CorenessDecomposition(
        config.n, eps=config.eps, cm=cm, constants=config.constants,
        seed=config.seed,
    )
    dens = DensityEstimator(
        config.n, eps=config.eps, cm=cm, constants=config.constants,
        seed=config.seed,
    )
    per_epoch = {0: (dict(core.estimates()), dens.density_estimate())}
    for e, op in enumerate(batches, 1):
        for st in (core, dens):
            if op.kind == "insert":
                st.insert_batch(op.edges)
            else:
                st.delete_batch(op.edges)
        per_epoch[e] = (dict(core.estimates()), dens.density_estimate())
    return per_epoch


def drive(shard: TenantShard, batches) -> None:
    for op in batches:
        shard.accept(op)
        shard.apply(op)


CFG = TenantConfig(n=32, eps=0.35, seed=5)


class TestValidation:
    def test_rejects_out_of_universe_edge(self, tmp_path):
        shard = TenantShard("t", tmp_path / "t", CFG)
        with pytest.raises(BatchError, match="universe"):
            shard.accept(BatchOp("insert", ((0, CFG.n),)))
        assert shard.accepted == 0

    def test_rejects_negative_endpoint(self, tmp_path):
        """Regression: only the upper endpoint was bounded, so an edge
        like (-5, 3) was accepted, WAL-logged, and replayed on every
        restart — negative ids would wrap any array-indexed substrate."""
        shard = TenantShard("t", tmp_path / "t", CFG)
        with pytest.raises(BatchError, match="universe"):
            shard.accept(BatchOp("insert", ((-5, 3),)))
        assert shard.accepted == 0
        shard.close()
        # nothing leaked into the WAL either
        assert TenantShard("t", tmp_path / "t", CFG).accepted == 0

    def test_rejects_duplicate_and_unknown(self, tmp_path):
        shard = TenantShard("t", tmp_path / "t", CFG)
        with pytest.raises(BatchError, match="duplicate"):
            shard.accept(BatchOp("insert", ((0, 1), (1, 0))))
        with pytest.raises(BatchError, match="absent"):
            shard.accept(BatchOp("delete", ((0, 1),)))
        shard.accept(BatchOp("insert", ((0, 1),)))
        with pytest.raises(BatchError, match="live"):
            shard.accept(BatchOp("insert", ((1, 0),)))

    def test_rejected_batches_never_reach_the_wal(self, tmp_path):
        shard = TenantShard("t", tmp_path / "t", CFG)
        with pytest.raises(BatchError):
            shard.accept(BatchOp("insert", ((0, 0),)))
        shard.close()
        reopened = TenantShard("t", tmp_path / "t", CFG)
        assert reopened.accepted == 0

    def test_mode_validation(self):
        with pytest.raises(ParameterError, match="mode"):
            TenantConfig(mode="exactly")

    def test_parameter_immutability(self, tmp_path):
        TenantShard("t", tmp_path / "t", CFG).close()
        with pytest.raises(BatchError, match="immutable"):
            TenantShard("t", tmp_path / "t", TenantConfig(n=64, seed=5))


class TestRecovery:
    def test_graceful_restart_is_bit_identical(self, tmp_path):
        batches = churn_batches(CFG.n, seed=1, count=10, size=5)
        oracle = oracle_answers(CFG, batches)
        shard = TenantShard("t", tmp_path / "t", CFG, checkpoint_every=4)
        drive(shard, batches)
        shard.close()  # checkpoints and seals the WAL
        reopened = TenantShard("t", tmp_path / "t", CFG)
        snap = reopened.snapshot
        assert snap.epoch == len(batches)
        assert (dict(snap.coreness), snap.density) == oracle[len(batches)]
        reopened.close()

    def test_kill_without_close_replays_the_wal(self, tmp_path):
        """No close(), no seal, checkpoint stale — recovery replays."""
        batches = churn_batches(CFG.n, seed=2, count=9, size=5)
        oracle = oracle_answers(CFG, batches)
        shard = TenantShard("t", tmp_path / "t", CFG, checkpoint_every=4)
        drive(shard, batches)  # last checkpoint at epoch 8, WAL has 9
        del shard  # simulated kill: nothing sealed
        reopened = TenantShard("t", tmp_path / "t", CFG, checkpoint_every=4)
        snap = reopened.snapshot
        assert snap.epoch == len(batches)
        assert (dict(snap.coreness), snap.density) == oracle[len(batches)]

    def test_torn_wal_tail_is_dropped_and_truncated(self, tmp_path):
        """A half-written (never acked) final line is physically removed."""
        batches = churn_batches(CFG.n, seed=3, count=6, size=4)
        oracle = oracle_answers(CFG, batches)
        shard = TenantShard("t", tmp_path / "t", CFG)
        drive(shard, batches)
        wal = tmp_path / "t" / WAL_NAME
        with open(wal, "a") as fh:
            fh.write('{"kind": "insert", "edges": [[1, 2')  # torn mid-write
        reopened = TenantShard("t", tmp_path / "t", CFG)
        assert reopened.accepted == len(batches)
        assert (
            dict(reopened.snapshot.coreness),
            reopened.snapshot.density,
        ) == oracle[len(batches)]
        assert not wal.read_text().rstrip().endswith("[[1, 2")
        # and the resumed writer appends cleanly after the truncation
        reopened.accept(BatchOp("insert", ((30, 31),)))
        reopened.apply(BatchOp("insert", ((30, 31),)))
        reopened.close()
        final = TenantShard("t", tmp_path / "t", CFG)
        assert final.accepted == len(batches) + 1

    def test_corrupt_checkpoint_falls_back_to_full_replay(self, tmp_path):
        batches = churn_batches(CFG.n, seed=4, count=8, size=4)
        oracle = oracle_answers(CFG, batches)
        shard = TenantShard("t", tmp_path / "t", CFG, checkpoint_every=3)
        drive(shard, batches)
        shard.close()
        (tmp_path / "t" / CHECKPOINT_NAME).write_text("{ not json")
        reopened = TenantShard("t", tmp_path / "t", CFG)
        assert (
            dict(reopened.snapshot.coreness),
            reopened.snapshot.density,
        ) == oracle[len(batches)]

    def test_checkpoint_ahead_of_wal_is_ignored(self, tmp_path):
        """A checkpoint claiming more batches than the WAL holds (e.g. the
        WAL lost its tail) must not be trusted."""
        batches = churn_batches(CFG.n, seed=6, count=6, size=4)
        shard = TenantShard("t", tmp_path / "t", CFG, checkpoint_every=2)
        drive(shard, batches)
        shard.write_checkpoint()
        shard.close(seal=False)
        payload = json.loads((tmp_path / "t" / CHECKPOINT_NAME).read_text())
        payload["position"] = len(batches) + 5
        (tmp_path / "t" / CHECKPOINT_NAME).write_text(json.dumps(payload))
        reopened = TenantShard("t", tmp_path / "t", CFG)
        oracle = oracle_answers(CFG, batches)
        assert (
            dict(reopened.snapshot.coreness),
            reopened.snapshot.density,
        ) == oracle[len(batches)]


class TestModesAndDiscovery:
    def test_coreness_only_tenant_has_no_density(self, tmp_path):
        cfg = TenantConfig(n=16, mode="coreness")
        shard = TenantShard("t", tmp_path / "t", cfg)
        shard.accept(BatchOp("insert", ((0, 1), (1, 2))))
        shard.apply(BatchOp("insert", ((0, 1), (1, 2))))
        snap = shard.snapshot
        assert snap.coreness is not None
        assert snap.density is None and snap.out_neighbors is None

    def test_discover_tenants(self, tmp_path):
        for name in ("beta", "alpha"):
            TenantShard(name, tmp_path / name, CFG).close()
        (tmp_path / "junk").mkdir()  # no meta.json: not a tenant
        assert discover_tenants(tmp_path) == ["alpha", "beta"]
        assert discover_tenants(tmp_path / "missing") == []

    def test_pending_counts_accepted_minus_applied(self, tmp_path):
        shard = TenantShard("t", tmp_path / "t", CFG)
        op = BatchOp("insert", ((0, 1),))
        shard.accept(op)
        assert shard.pending == 1
        shard.apply(op)
        assert shard.pending == 0
