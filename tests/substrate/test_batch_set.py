"""Tests for the batch ordered set (the [PP01] substitute)."""

import pytest

from repro.instrument import CostModel
from repro.pbst import BatchOrderedSet


class TestBatchOps:
    def test_batch_insert_counts_new(self):
        s = BatchOrderedSet()
        assert s.batch_insert([3, 1, 2]) == 3
        assert s.batch_insert([2, 4]) == 1
        assert len(s) == 4

    def test_batch_delete_counts_removed(self):
        s = BatchOrderedSet(items=[1, 2, 3])
        assert s.batch_delete([2, 9]) == 1
        assert len(s) == 2

    def test_initial_items(self):
        s = BatchOrderedSet(items=[5, 3])
        assert s.to_list() == [3, 5]

    def test_order_maintained(self):
        s = BatchOrderedSet()
        s.batch_insert([9, 1, 5])
        s.batch_insert([3, 7])
        assert s.to_list() == [1, 3, 5, 7, 9]

    def test_queries(self):
        s = BatchOrderedSet(items=[10, 20, 30])
        assert 20 in s
        assert 25 not in s
        assert s.rank(25) == 2
        assert s.select(0) == 10
        assert s.min() == 10
        assert s.max() == 30

    def test_check_passes(self):
        s = BatchOrderedSet(items=range(50))
        s.batch_delete(range(0, 50, 3))
        s.check()


class TestCostAccounting:
    def test_batch_charges_log_per_element(self):
        cm = CostModel()
        s = BatchOrderedSet(cm=cm)
        s.batch_insert(range(64))
        # 64 elements at O(log 64) work, O(log) depth for the whole batch
        assert cm.work >= 64
        assert cm.depth <= cm.work
        assert cm.depth <= 12  # one batch: a single O(log n) depth charge

    def test_empty_batch_charges_nothing(self):
        cm = CostModel()
        s = BatchOrderedSet(cm=cm)
        s.batch_insert([])
        assert cm.work == 0

    def test_query_charges(self):
        cm = CostModel()
        s = BatchOrderedSet(cm=cm, items=range(32))
        before = cm.work
        _ = 5 in s
        assert cm.work > before

    def test_works_without_cost_model(self):
        s = BatchOrderedSet()
        s.batch_insert([1])
        assert 1 in s
