"""Tests for Brent's-principle projections."""

import pytest

from repro.instrument import parallelism, project, saturation_processors


class TestProject:
    def test_single_processor_equals_work(self):
        (pt,) = project(1000, 10, [1])
        assert pt.time_lower == 1000
        assert pt.time_upper == 1010

    def test_speedup_bounded_by_parallelism(self):
        pts = project(10_000, 100, [1, 10, 100, 1000])
        ceiling = parallelism(10_000, 100)
        for pt in pts:
            assert pt.speedup_upper <= ceiling + 1e-9
            assert pt.speedup_lower <= pt.speedup_upper

    def test_depth_floor(self):
        (pt,) = project(1000, 50, [10_000])
        assert pt.time_lower == 50  # depth dominates

    def test_monotone_speedup(self):
        pts = project(5000, 20, [1, 2, 4, 8])
        ups = [p.speedup_upper for p in pts]
        assert ups == sorted(ups)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            project(10, 20, [1])  # depth > work
        with pytest.raises(ValueError):
            project(10, 5, [0])
        with pytest.raises(ValueError):
            project(-1, 0, [1])


class TestDerived:
    def test_parallelism(self):
        assert parallelism(100, 10) == 10.0
        assert parallelism(0, 0) == 1

    def test_saturation(self):
        assert saturation_processors(100, 10) == 10
        assert saturation_processors(101, 10) == 11
        assert saturation_processors(5, 0) == 1
