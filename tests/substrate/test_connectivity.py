"""Tests for random hook-and-contract parallel connectivity."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import DynamicGraph, generators as gen
from repro.instrument import CostModel
from repro.pram import connected_components


def components_of(g: DynamicGraph, seed=0, cm=None):
    labels, rounds = connected_components(
        range(g.n), neighbors=g.adj, cm=cm, seed=seed
    )
    groups = {}
    for v, l in labels.items():
        groups.setdefault(l, frozenset()), None
        groups[l] = groups.get(l, frozenset()) | {v}
    return {frozenset(c) for c in groups.values()}, rounds


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_networkx(self, seed):
        n, edges = gen.erdos_renyi(80, 90, seed=seed)
        g = DynamicGraph(n, edges)
        ours, _ = components_of(g, seed=seed)
        theirs = {frozenset(c) for c in nx.connected_components(g.to_networkx())}
        assert ours == theirs

    def test_empty_graph(self):
        labels, rounds = connected_components([], neighbors={})
        assert labels == {}
        assert rounds == 0

    def test_isolated_vertices(self):
        labels, _ = connected_components([3, 7, 9], neighbors={})
        assert labels == {3: 3, 7: 7, 9: 9}

    def test_single_component(self):
        n, edges = gen.clique(10)
        g = DynamicGraph(n, edges)
        comps, _ = components_of(g)
        assert comps == {frozenset(range(10))}

    def test_labels_are_canonical_minimums(self):
        n, edges = gen.path(6)
        labels, _ = connected_components(range(n), neighbors=DynamicGraph(n, edges).adj)
        assert set(labels.values()) == {0}

    def test_edges_interface(self):
        labels, _ = connected_components([0, 1, 2, 3], edges=[(0, 1), (2, 3)])
        assert labels[0] == labels[1] == 0
        assert labels[2] == labels[3] == 2

    def test_restricted_vertex_set_ignores_outside_edges(self):
        # edge (1,2) leaves the set {0,1}: must not merge anything
        labels, _ = connected_components([0, 1], edges=[(1, 2), (0, 5)])
        assert labels == {0: 0, 1: 1}


class TestRoundsAndCosts:
    def test_rounds_logarithmic_on_long_path(self):
        n, edges = gen.path(512)
        g = DynamicGraph(n, edges)
        _, rounds = components_of(g)
        # BFS/propagation would need ~512 rounds; contraction needs ~log n
        assert rounds <= 60

    def test_cost_model_charged(self):
        cm = CostModel()
        n, edges = gen.grid(6, 6)
        connected_components(range(n), neighbors=DynamicGraph(n, edges).adj, cm=cm)
        assert cm.work > 0
        assert cm.depth < cm.work

    def test_deterministic_given_seed(self):
        n, edges = gen.erdos_renyi(40, 50, seed=5)
        g = DynamicGraph(n, edges)
        a = components_of(g, seed=9)
        b = components_of(g, seed=9)
        assert a == b


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 100_000))
def test_hypothesis_matches_networkx(seed):
    n, edges = gen.erdos_renyi(30, 35, seed=seed)
    g = DynamicGraph(n, edges)
    ours, _ = components_of(g, seed=seed)
    theirs = {frozenset(c) for c in nx.connected_components(g.to_networkx())}
    assert ours == theirs
