"""Tests for the serial / process execution backends."""

from repro.pram import ProcessExecutor, SerialExecutor


def _square(x):
    return x * x


class TestSerial:
    def test_maps_in_order(self):
        assert SerialExecutor().map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_empty(self):
        assert SerialExecutor().map(_square, []) == []


class TestProcess:
    def test_single_worker_falls_back_to_serial(self):
        ex = ProcessExecutor(max_workers=1)
        assert ex.map(_square, [2, 3]) == [4, 9]

    def test_single_item_avoids_pool(self):
        ex = ProcessExecutor(max_workers=4)
        assert ex.map(_square, [5]) == [25]

    def test_pool_path(self):
        # Runs the real pool on a picklable function (cheap items).
        ex = ProcessExecutor(max_workers=2)
        assert ex.map(_square, [1, 2, 3, 4]) == [1, 4, 9, 16]

    def test_default_worker_count_positive(self):
        assert ProcessExecutor().max_workers >= 1
