"""Tests for the serial / process execution backends.

The load-bearing guarantee is the delta-merge contract
(docs/PERFORMANCE.md): running a ladder sweep through
``ProcessExecutor.run_structures`` must leave the coordinator's cost
model, counters, and armed phase tree bit-identical to
``SerialExecutor`` — workers account against a fresh model and the
coordinator replays the delta as one charge per branch.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import Constants
from repro.core.coreness import CorenessDecomposition
from repro.core.density import DensityEstimator
from repro.instrument import trace as _trace
from repro.instrument.telemetry import SpanNode, Tracer, merge_span_children
from repro.instrument.work_depth import CostModel
from repro.pram import ProcessExecutor, SerialExecutor, WorkerDelta
from repro.pram.executor import dump_structure, load_structure, merge_delta

SMALL = Constants(sample_c=0.5, min_B=4, duplication_cap=8)


def _square(x):
    return x * x


class TestSerial:
    def test_maps_in_order(self):
        assert SerialExecutor().map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_empty(self):
        assert SerialExecutor().map(_square, []) == []


class TestProcess:
    def test_single_worker_falls_back_to_serial(self):
        ex = ProcessExecutor(max_workers=1)
        assert ex.map(_square, [2, 3]) == [4, 9]

    def test_single_item_avoids_pool(self):
        ex = ProcessExecutor(max_workers=4)
        assert ex.map(_square, [5]) == [25]

    def test_pool_path(self):
        # Runs the real pool on a picklable function (cheap items).
        with ProcessExecutor(max_workers=2) as ex:
            assert ex.map(_square, [1, 2, 3, 4]) == [1, 4, 9, 16]

    def test_default_worker_count_positive(self):
        assert ProcessExecutor().max_workers >= 1

    def test_pickle_drops_pool_handle(self):
        import pickle

        ex = ProcessExecutor(max_workers=3)
        ex._ensure_pool()
        try:
            clone = pickle.loads(pickle.dumps(ex))
            assert clone.max_workers == 3
            assert clone._pool is None
        finally:
            ex.close()


# -- structure pickling (cost-model factoring) --------------------------------


class TestStructurePickle:
    def test_round_trip_rebinds_cost_model(self):
        cm = CostModel()
        st_ = CorenessDecomposition(24, eps=0.35, cm=cm, constants=SMALL)
        st_.insert_batch([(0, 1), (1, 2), (2, 3)])
        blob = dump_structure(st_.rungs[0])
        other = CostModel()
        loaded = load_structure(blob, other)
        assert loaded.cm is other
        inner = loaded.dup.inner if loaded.dup is not None else loaded.bal
        assert inner.cm is other
        # and the logical state survived
        assert loaded.estimate(1) == st_.rungs[0].estimate(1)

    def test_round_trip_is_replay_identical(self):
        """A round-tripped replica takes the same trajectory as the original.

        This is the determinism property the process backend rests on: all
        internal choice points (treap shapes, in-index picks) are pure
        functions of the logical state, never of container history.
        """
        def build():
            cm = CostModel()
            return cm, DensityEstimator(20, eps=0.35, cm=cm, constants=SMALL)

        cm_a, a = build()
        cm_b, b = build()
        edges = [(i, (i + 1) % 12) for i in range(12)] + [(0, i) for i in range(2, 9)]
        a.insert_batch(edges)
        b.insert_batch(edges)
        b = load_structure(dump_structure(b), cm_b)  # round-trip mid-stream
        more = [(1, i) for i in range(3, 10)]
        a.insert_batch(more)
        b.insert_batch(more)
        a.delete_batch(edges[:6])
        b.delete_batch(edges[:6])
        assert (cm_a.work, cm_a.depth, dict(cm_a.counters)) == (
            cm_b.work,
            cm_b.depth,
            dict(cm_b.counters),
        )
        assert a.density_estimate() == b.density_estimate()


# -- delta merging ------------------------------------------------------------


class TestDeltaMerge:
    def test_merge_span_children_sums_same_keyed_nodes(self):
        dst = SpanNode("ladder.rung", (("H", 2),))
        existing = dst.child("balanced.insert", ())
        existing.count, existing.work, existing.depth = 1, 10, 4

        src = SpanNode("run")
        child = src.child("balanced.insert", ())
        child.count, child.work, child.depth = 2, 7, 3
        grand = child.child("game.drop", ())
        grand.count, grand.work = 1, 5

        merge_span_children(dst, src)
        merged = dst.child("balanced.insert", ())
        assert (merged.count, merged.work, merged.depth) == (3, 17, 7)
        assert dst.child("balanced.insert", ()).child("game.drop", ()).work == 5
        # src's own root totals are NOT merged (coordinator charges those)
        assert dst.work == 0

    def test_merge_delta_without_tracer(self):
        cm = CostModel()
        delta = WorkerDelta(work=11, depth=5, counters={"b": 2, "a": 3})
        with cm.parallel() as region:
            with region.branch():
                merge_delta(cm, delta)
        assert cm.work == 11
        assert cm.depth == 5
        assert cm.counters["a"] == 3 and cm.counters["b"] == 2

    def test_merge_delta_reemits_events_with_coordinator_path(self):
        cm = CostModel()
        events: list[dict] = []
        tracer = Tracer(cm, sinks=[events.append])
        delta = WorkerDelta(
            work=1,
            depth=1,
            tree=SpanNode("run"),
            events=[{"type": "event", "name": "x", "path": ["balanced.insert"]}],
        )
        with _trace.tracing(tracer):
            with _trace.span("batch"):
                with cm.parallel() as region:
                    with region.branch():
                        merge_delta(cm, delta)
        reemitted = [ev for ev in events if ev.get("name") == "x"]
        assert len(reemitted) == 1
        assert reemitted[0]["path"] == ["batch", "balanced.insert"]


# -- serial vs process equivalence on the real ladders ------------------------


def _mixed_batches(n: int, steps: int, seed: int) -> list[tuple[str, list]]:
    """A deterministic mixed insert/delete schedule on ``n`` vertices."""
    rng = random.Random(seed)
    live: set[tuple[int, int]] = set()
    batches: list[tuple[str, list]] = []
    for step in range(steps):
        if live and rng.random() < 0.4:
            k = rng.randint(1, min(6, len(live)))
            dele = rng.sample(sorted(live), k)
            live.difference_update(dele)
            batches.append(("delete_batch", dele))
        else:
            fresh = []
            for _ in range(rng.randint(1, 8)):
                u, v = rng.sample(range(n), 2)
                e = (min(u, v), max(u, v))
                if e not in live and e not in fresh:
                    fresh.append(e)
            if fresh:
                live.update(fresh)
                batches.append(("insert_batch", fresh))
    return batches


def _drive(executor, batches, n=18, rung_skip=False, armed=False):
    """Replay ``batches`` through both ladders; return the full observable."""
    cm = CostModel()
    core = CorenessDecomposition(
        n, eps=0.35, cm=cm, constants=SMALL, executor=executor, rung_skip=rung_skip
    )
    dens = DensityEstimator(
        n, eps=0.35, cm=cm, constants=SMALL, executor=executor, rung_skip=rung_skip
    )
    tracer = Tracer(cm) if armed else None

    def replay():
        for method, edges in batches:
            for st_ in (core, dens):
                getattr(st_, method)(edges)

    if tracer is not None:
        with _trace.tracing(tracer):
            with _trace.span("batch"):
                replay()
    else:
        replay()
    tree = None
    if tracer is not None:
        # The pram.map span advertises its backend as an attribute; that is
        # the ONE intended difference between the two trees, so normalise it.
        def norm(label: str) -> str:
            return label.replace("backend=process", "backend=*").replace(
                "backend=serial", "backend=*"
            )

        tree = [
            (tuple(norm(p) for p in path), node.count, node.work, node.depth)
            for path, node in tracer.root.walk()
        ]
        assert tracer.frame_mismatches == 0
    return {
        "view": (cm.work, cm.depth, dict(cm.counters)),
        "estimates": core.estimates(),
        "max": core.max_estimate(),
        "density": dens.density_estimate(),
        "maxout": dens.max_outdegree(),
        "tree": tree,
    }


class TestSerialProcessEquivalence:
    def test_disarmed_fallback(self):
        batches = _mixed_batches(18, 12, seed=5)
        serial = _drive(SerialExecutor(), batches)
        proc = _drive(ProcessExecutor(max_workers=1), batches)
        assert serial == proc

    def test_armed_fallback_trees_match(self):
        batches = _mixed_batches(18, 10, seed=7)
        serial = _drive(SerialExecutor(), batches, armed=True)
        proc = _drive(ProcessExecutor(max_workers=1), batches, armed=True)
        assert serial == proc
        assert serial["tree"] is not None

    def test_real_pool_armed(self):
        batches = _mixed_batches(14, 5, seed=11)
        serial = _drive(SerialExecutor(), batches, armed=True)
        with ProcessExecutor(max_workers=2) as ex:
            proc = _drive(ex, batches, armed=True)
        assert serial == proc

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_equivalence_property(self, seed):
        """Property: same results, work/depth totals, and counters, for any
        mixed schedule (in-process round-trip fallback keeps it fast)."""
        batches = _mixed_batches(16, 8, seed=seed)
        serial = _drive(SerialExecutor(), batches)
        proc = _drive(ProcessExecutor(max_workers=1), batches)
        assert serial == proc


class TestFaultTolerance:
    """Dead/hung workers degrade gracefully — and never change answers."""

    def test_forced_timeout_degrades_to_inline_with_identical_answers(self):
        from repro.instrument.telemetry import REGISTRY

        batches = _mixed_batches(14, 5, seed=3)
        serial = _drive(SerialExecutor(), batches)
        REGISTRY.clear()
        # an unmeetable per-task timeout makes every pooled round "hang":
        # bounded retries, then in-process execution of the same payloads
        with ProcessExecutor(max_workers=2, task_timeout=1e-9, task_retries=1) as ex:
            degraded = _drive(ex, batches)
        assert degraded == serial
        assert REGISTRY.counter("repro_executor_degraded_total").value > 0
        assert REGISTRY.counter("repro_executor_retries_total").value > 0

    def test_healthy_pool_publishes_no_fault_metrics(self):
        from repro.instrument.telemetry import REGISTRY

        batches = _mixed_batches(14, 4, seed=9)
        REGISTRY.clear()
        with ProcessExecutor(max_workers=2) as ex:
            _drive(ex, batches)
        assert REGISTRY.counter("repro_executor_degraded_total").value == 0
        assert REGISTRY.counter("repro_executor_retries_total").value == 0

    def test_task_bug_propagates_without_retry(self):
        from repro.instrument.telemetry import REGISTRY
        from repro.pram.executor import RungTask

        REGISTRY.clear()
        cm = CostModel()
        task = RungTask(structure=CorenessDecomposition(
            8, eps=0.35, cm=cm, constants=SMALL), method="no_such_method")
        with ProcessExecutor(max_workers=2) as ex:
            with pytest.raises(AttributeError):
                ex.run_structures(cm, [task, task])
        assert REGISTRY.counter("repro_executor_retries_total").value == 0

    def test_retries_are_bounded(self):
        from repro.instrument.telemetry import REGISTRY

        REGISTRY.clear()
        batches = _mixed_batches(12, 2, seed=1)
        with ProcessExecutor(max_workers=2, task_timeout=1e-9, task_retries=3) as ex:
            _drive(ex, batches)
        retries = REGISTRY.counter("repro_executor_retries_total").value
        degraded = REGISTRY.counter("repro_executor_degraded_total").value
        assert degraded > 0
        # with an unmeetable timeout every degraded task fails in exactly
        # (task_retries + 1) pooled rounds before running inline
        assert retries == (3 + 1) * degraded

    def test_timeout_survives_pickle_roundtrip(self):
        import pickle

        ex = ProcessExecutor(max_workers=3, task_timeout=7.5, task_retries=4)
        clone = pickle.loads(pickle.dumps(ex))
        assert (clone.max_workers, clone.task_timeout, clone.task_retries) == (
            3, 7.5, 4,
        )
