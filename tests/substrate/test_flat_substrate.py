"""Substrate equivalence: flat vs treap, property-tested end to end.

The flat substrate's contract (docs/PERFORMANCE.md) is that it is a pure
wall-clock knob: for any batch stream, every query answer *and* every
cost-model total (work, depth, counters) is bit-identical to the treap
substrate — including through ``guarded()`` rollback and checkpoint
round trips.  The hypothesis driver below generates arbitrary
insert/delete streams (normalised so deletes only touch live edges, the
structures' own precondition) and diffs full ladder state between the
two substrates after every batch.

The resident-state executor (``SharedStateExecutor``) rides the same
contract from the other side: rung state lives in persistent workers and
only ops + scalar deltas cross the process boundary, yet answers and
accounting must match the serial backend exactly, on either substrate.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import Constants, ExecConfig
from repro.core.coreness import CorenessDecomposition
from repro.core.density import DensityEstimator
from repro.core.ladder import RungStore
from repro.graphs.graph import norm_edge
from repro.resilience.checkpoint import checkpoint, restore_checkpoint
from repro.resilience.guard import guarded

SMALL = Constants(sample_c=0.5, min_B=4, duplication_cap=8)
N = 16


# -- stream generation ---------------------------------------------------------

_edges = st.lists(
    st.tuples(st.integers(0, N - 1), st.integers(0, N - 1)),
    min_size=1,
    max_size=8,
)

_raw_stream = st.lists(
    st.tuples(st.sampled_from(["insert", "delete"]), _edges),
    min_size=1,
    max_size=6,
)


def _normalise(raw):
    """Turn a raw op list into a stream the structures accept.

    Inserts drop self-loops, duplicates within the batch, and edges
    already live; deletes keep only currently-live edges.  The result is
    deterministic in the raw stream, so both substrates replay the exact
    same batches.
    """
    live: set[tuple[int, int]] = set()
    ops = []
    for kind, edges in raw:
        batch = _valid_batch(kind, edges, live)
        if not batch:
            continue
        live.update(batch) if kind == "insert" else live.difference_update(batch)
        ops.append((kind, batch))
    return ops


def _valid_batch(kind, edges, live):
    """The subset of ``edges`` the structures accept against ``live``."""
    batch = []
    for u, v in edges:
        if u == v:
            continue
        e = norm_edge(u, v)
        if kind == "insert" and e not in live and e not in batch:
            batch.append(e)
        elif kind == "delete" and e in live and e not in batch:
            batch.append(e)
    return batch


class _Pair:
    """One (coreness, density) ladder pair on a given substrate."""

    def __init__(self, substrate, seed=5):
        from repro.instrument.work_depth import CostModel

        self.cm = CostModel()
        self.core = CorenessDecomposition(
            N, eps=0.3, cm=self.cm, constants=SMALL, seed=seed,
            substrate=substrate,
        )
        self.dens = DensityEstimator(
            N, eps=0.3, cm=self.cm, constants=SMALL, seed=seed,
            substrate=substrate,
        )

    def apply(self, kind, edges):
        for st_ in (self.core, self.dens):
            if kind == "insert":
                st_.insert_batch(edges)
            else:
                st_.delete_batch(edges)

    def observe(self):
        return (
            tuple(sorted(self.core.estimates().items())),
            self.core.max_estimate(),
            self.dens.density_estimate(),
            self.dens.arboricity_estimate(),
            self.dens.max_outdegree(),
        )

    def totals(self):
        return (self.cm.work, self.cm.depth, dict(sorted(self.cm.counters.items())))


# -- the equivalence property --------------------------------------------------


class TestFlatTreapEquivalence:
    @given(raw=_raw_stream)
    @settings(max_examples=20, deadline=None)
    def test_stream_bit_identical(self, raw):
        ops = _normalise(raw)
        treap, flat = _Pair("treap"), _Pair("flat")
        for kind, edges in ops:
            treap.apply(kind, edges)
            flat.apply(kind, edges)
            assert flat.observe() == treap.observe()
            assert flat.totals() == treap.totals()
        treap.core.check_invariants()
        flat.core.check_invariants()

    @given(raw=_raw_stream, boom_at=st.integers(0, 5))
    @settings(max_examples=15, deadline=None)
    def test_guarded_rollback_bit_identical(self, raw, boom_at):
        """A rolled-back batch leaves both substrates in the same state.

        One batch (index ``boom_at``) is applied under ``guarded()`` and
        aborted mid-transaction; the rollback must restore both ladders
        to states that keep agreeing — answers and accounting — for the
        rest of the stream.  Batches are validated against the *actual*
        live edge set, which the rolled-back batch never joins — a later
        op must not assume the aborted batch landed.
        """
        treap, flat = _Pair("treap"), _Pair("flat")
        live: set = set()
        index = 0
        for kind, edges in raw:
            batch = _valid_batch(kind, edges, live)
            if not batch:
                continue
            if index == boom_at:
                # aborted: the ladders — and therefore ``live`` — are
                # rolled back to their pre-batch state.
                for pair in (treap, flat):
                    with pytest.raises(RuntimeError):
                        with guarded(pair.core):
                            with guarded(pair.dens):
                                pair.apply(kind, batch)
                                raise RuntimeError("forced abort")
            else:
                treap.apply(kind, batch)
                flat.apply(kind, batch)
                if kind == "insert":
                    live.update(batch)
                else:
                    live.difference_update(batch)
            index += 1
            assert flat.observe() == treap.observe()
            assert flat.totals() == treap.totals()

    @given(raw=_raw_stream)
    @settings(max_examples=10, deadline=None)
    def test_checkpoint_round_trip_bit_identical(self, raw):
        """Checkpoints agree modulo the substrate tag and restore cleanly —
        including *across* substrates (a treap checkpoint restored onto
        flat answers identically)."""
        ops = _normalise(raw)
        treap, flat = _Pair("treap"), _Pair("flat")
        for kind, edges in ops:
            treap.apply(kind, edges)
            flat.apply(kind, edges)
        for st_t, st_f in ((treap.core, flat.core), (treap.dens, flat.dens)):
            pay_t, pay_f = checkpoint(st_t), checkpoint(st_f)
            assert pay_t["substrate"] == "treap"
            assert pay_f["substrate"] == "flat"
            pay_f_as_t = dict(pay_f, substrate="treap")
            assert pay_t == pay_f_as_t  # logical state identical
            back_f = restore_checkpoint(pay_f)
            assert back_f.substrate == "flat"
            # cross-substrate restore: treap payload onto flat layout
            cross = restore_checkpoint(dict(pay_t, substrate="flat"))
            assert cross.substrate == "flat"
            for q in ("estimates",) if hasattr(st_t, "estimates") else ():
                assert getattr(back_f, q)() == getattr(st_t, q)()
                assert getattr(cross, q)() == getattr(st_t, q)()
        assert flat.observe() == treap.observe()


# -- the resident-state executor ----------------------------------------------


def _drive(workers, shared_state, substrate, query_every=0):
    from repro.graphs import generators, streams

    n, edges = generators.erdos_renyi(24, 70, seed=3)
    ex = ExecConfig(workers=workers, shared_state=shared_state).make_executor()
    try:
        from repro.instrument.work_depth import CostModel

        cm = CostModel()
        core = CorenessDecomposition(
            n, eps=0.3, cm=cm, constants=SMALL, seed=3,
            executor=ex, substrate=substrate,
        )
        dens = DensityEstimator(
            n, eps=0.3, cm=cm, constants=SMALL, seed=3,
            executor=ex, substrate=substrate,
        )
        for k, op in enumerate(streams.insert_then_delete(edges, 10, seed=3)):
            if op.kind == "insert":
                core.insert_batch(op.edges)
                dens.insert_batch(op.edges)
            else:
                core.delete_batch(op.edges)
                dens.delete_batch(op.edges)
            if query_every and (k + 1) % query_every == 0:
                # mid-stream queries materialise resident rungs and force
                # the executor back through its reseed path
                core.max_estimate()
                dens.density_estimate()
        answers = (
            tuple(sorted(core.estimates().items())),
            core.max_estimate(),
            dens.density_estimate(),
        )
        return answers, (cm.work, cm.depth, dict(sorted(cm.counters.items())))
    finally:
        ex.close()


class TestSharedStateExecutor:
    @pytest.mark.parametrize("substrate", ["treap", "flat"])
    def test_bit_identical_to_serial(self, substrate):
        base = _drive(1, False, substrate)
        shm = _drive(2, True, substrate)
        assert shm == base

    def test_bit_identical_with_interleaved_queries(self):
        # queries every 2 batches: steady ops-only batches alternate with
        # materialise + reseed cycles, all under the flat substrate
        base = _drive(1, False, "flat", query_every=2)
        shm = _drive(2, True, "flat", query_every=2)
        assert shm == base

    def test_exec_config_selects_shared_state(self):
        from repro.pram.shmexec import SharedStateExecutor

        ex = ExecConfig(workers=2, shared_state=True).make_executor()
        try:
            assert isinstance(ex, SharedStateExecutor)
        finally:
            ex.close()


class TestRungStore:
    def test_materialises_handles_on_read(self):
        class Handle:
            def __init__(self, value):
                self.value = value

            def __materialize__(self):
                return self.value

        store = RungStore(["a", Handle("b")])
        assert store.raw(1).__class__ is Handle  # raw() never resolves
        assert store[1] == "b"
        assert store.raw(1) == "b"  # resolved in place
        assert list(store) == ["a", "b"]
