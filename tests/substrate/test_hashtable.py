"""Tests for the batch hash table (the [GMV91] substitute)."""

from repro.hashtable import BatchHashTable, log_star
from repro.instrument import CostModel


class TestLogStar:
    def test_small_values(self):
        assert log_star(1) == 1
        assert log_star(2) == 1
        assert log_star(4) == 2
        assert log_star(16) == 3
        assert log_star(65536) == 4

    def test_monotone_and_tiny(self):
        assert log_star(2**64) <= 6


class TestBatchTable:
    def test_set_get_roundtrip(self):
        t = BatchHashTable()
        t.batch_set([(1, "a"), (2, "b")])
        assert t.batch_get([1, 2, 3]) == ["a", "b", None]

    def test_batch_get_default(self):
        t = BatchHashTable()
        assert t.batch_get([9], default=-1) == [-1]

    def test_batch_delete_counts(self):
        t = BatchHashTable(items={1: "x", 2: "y"})
        assert t.batch_delete([1, 7]) == 1
        assert 1 not in t
        assert 2 in t

    def test_overwrite(self):
        t = BatchHashTable()
        t.batch_set([(1, "a")])
        t.batch_set([(1, "z")])
        assert t.get(1) == "z"

    def test_point_ops(self):
        t = BatchHashTable()
        t.set(5, "v")
        assert t.get(5) == "v"
        assert t.delete(5)
        assert not t.delete(5)

    def test_iteration_and_len(self):
        t = BatchHashTable(items={i: i * i for i in range(10)})
        assert len(t) == 10
        assert sorted(t.keys()) == list(range(10))
        assert sorted(t.values()) == [i * i for i in range(10)]

    def test_charges_constant_work_per_element(self):
        cm = CostModel()
        t = BatchHashTable(cm=cm)
        t.batch_set([(i, i) for i in range(100)])
        # O(1) work per element, O(log* n) depth per batch
        assert 100 <= cm.work <= 150
        assert cm.depth <= 8
