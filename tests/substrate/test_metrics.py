"""Tests for metric records, series summaries, and table rendering."""

from repro.instrument import BatchRecord, BatchTimer, CostModel, Series, render_series, render_table


def record(kind="insert", size=10, work=100, depth=5):
    return BatchRecord(kind=kind, batch_size=size, work=work, depth=depth, wall_seconds=0.0)


class TestBatchRecord:
    def test_work_per_edge(self):
        assert record(size=10, work=100).work_per_edge == 10.0

    def test_zero_size(self):
        assert record(size=0, work=7).work_per_edge == 7


class TestSeries:
    def test_totals(self):
        s = Series([record(work=10, size=2), record(work=30, size=3)])
        assert s.total_work() == 40
        assert s.total_edges() == 5
        assert s.mean_work_per_edge() == 8.0

    def test_max_work_per_edge(self):
        s = Series([record(work=10, size=10), record(work=90, size=3)])
        assert s.max_work_per_edge() == 30.0

    def test_depth_summaries(self):
        s = Series([record(depth=3), record(depth=9)])
        assert s.max_depth() == 9
        assert s.mean_depth() == 6.0

    def test_percentiles(self):
        s = Series([record(work=i * 10, size=10) for i in range(1, 11)])
        assert s.percentile_work_per_edge(0) == 1.0
        assert s.percentile_work_per_edge(100) == 10.0
        assert 5.0 <= s.percentile_work_per_edge(50) <= 6.0

    def test_empty(self):
        s = Series()
        assert s.total_work() == 0
        assert s.max_work_per_edge() == 0.0
        assert s.percentile_work_per_edge(50) == 0.0


class TestBatchTimer:
    def test_records_deltas(self):
        cm = CostModel()
        timer = BatchTimer(cm)
        with timer.batch("insert", 5):
            cm.tick(50)
            cm.count("phases", 2)
        rec = timer.series.records[0]
        assert rec.work == 50
        assert rec.batch_size == 5
        assert rec.counters == {"phases": 2}

    def test_multiple_batches_isolated(self):
        cm = CostModel()
        timer = BatchTimer(cm)
        with timer.batch("insert", 1):
            cm.tick(10)
        with timer.batch("delete", 1):
            cm.tick(5)
        works = [r.work for r in timer.series.records]
        assert works == [10, 5]


class TestRendering:
    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [[1, 2.5], [10, 0.333333]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("| a")
        assert all(line.startswith("|") for line in lines)

    def test_render_series(self):
        out = render_series([1, 2], [10.0, 20.0], "x", "y")
        assert "x" in out and "y" in out and "20" in out

    def test_float_formatting(self):
        out = render_table(["v"], [[1e-9], [123456.0], [1.5]])
        assert "e-09" in out
        assert "e+05" in out or "123456" in out
