"""Tests for the PRAM primitives (scan, reduce, pack, winners, semisort)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.instrument import CostModel
from repro.pram import (
    arbitrary_winners,
    pack,
    parallel_map,
    parallel_sort,
    reduce_max,
    reduce_sum,
    scan,
    semisort,
)


class TestScan:
    def test_exclusive_prefix_sum(self):
        assert scan([1, 2, 3, 4]) == [0, 1, 3, 6]

    def test_empty(self):
        assert scan([]) == []

    def test_single(self):
        assert scan([7]) == [0]

    def test_charges_linear_work_log_depth(self):
        cm = CostModel()
        scan(list(range(128)), cm)
        assert cm.work == 128
        assert cm.depth == 7


class TestReduce:
    def test_sum(self):
        assert reduce_sum([1.5, 2.5]) == 4.0
        assert reduce_sum([]) == 0.0

    def test_max(self):
        assert reduce_max([3, 9, 1]) == 9
        assert reduce_max([]) == float("-inf")


class TestPack:
    def test_filters_by_flags(self):
        assert pack(["a", "b", "c"], [True, False, True]) == ["a", "c"]

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            pack([1], [True, False])


class TestArbitraryWinners:
    def test_one_winner_per_target(self):
        winners = arbitrary_winners([(1, "x"), (1, "y"), (2, "z")])
        assert winners == {1: "x", 2: "z"}

    def test_first_wins_after_sort(self):
        proposals = sorted([(2, "b"), (1, "q"), (1, "a")])
        assert arbitrary_winners(proposals) == {1: "a", 2: "b"}

    def test_empty(self):
        assert arbitrary_winners([]) == {}

    def test_depth_constant(self):
        cm = CostModel()
        arbitrary_winners([(i % 3, i) for i in range(30)], cm)
        assert cm.depth == 1
        assert cm.work == 30


class TestSemisort:
    def test_groups(self):
        groups = semisort([("a", 1), ("b", 2), ("a", 3)])
        assert groups == {"a": [1, 3], "b": [2]}

    def test_preserves_order_within_group(self):
        groups = semisort([(0, i) for i in range(5)])
        assert groups[0] == list(range(5))


class TestSortAndMap:
    def test_parallel_sort(self):
        assert parallel_sort([3, 1, 2]) == [1, 2, 3]

    def test_parallel_sort_key(self):
        assert parallel_sort(["bb", "a"], key=len) == ["a", "bb"]

    def test_sort_charges_nlogn(self):
        cm = CostModel()
        parallel_sort(list(range(64)), cm=cm)
        assert cm.work == 64 * 6
        assert cm.depth == 6

    def test_parallel_map(self):
        cm = CostModel()
        assert parallel_map([1, 2], lambda x: x * 10, cm) == [10, 20]
        assert cm.depth == 1


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(-1000, 1000)))
def test_hypothesis_scan_matches_cumsum(xs):
    out = scan(xs)
    acc = 0
    for i, x in enumerate(xs):
        assert out[i] == acc
        acc += x


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 5), st.integers())))
def test_hypothesis_winners_subset_of_proposals(props):
    winners = arbitrary_winners(props)
    assert set(winners.items()) <= set((t, p) for t, p in props)
    assert set(winners) == {t for t, _ in props}
