"""Regression: shm segments must not leak on the kill/degrade path.

``ShmArena``'s protocol unlinks a seed segment only after its reader
consumes it.  When :class:`~repro.pram.shmexec.SharedStateExecutor`
retires the worker fleet mid-sweep (a hang, a dead worker) and falls
back to in-process execution, already-published-but-never-read segments
used to stay registered until ``close()`` — or, without a close, until
the multiprocessing resource tracker cleaned up at interpreter exit with
a "leaked shared_memory objects" warning.  The degraded collect path now
unlinks every unconsumed segment the moment its plan degrades.
"""

from __future__ import annotations

import subprocess
import sys
import textwrap

import pytest

from repro.config import Constants
from repro.core.coreness import CorenessDecomposition
from repro.core.density import DensityEstimator
from repro.instrument.work_depth import CostModel
from repro.pram.shmexec import SharedStateExecutor

SMALL = Constants(sample_c=0.5, min_B=4, duplication_cap=8)

EDGES = [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (1, 4), (0, 4)]


def _drive_degraded(executor) -> tuple:
    """One seeding sweep per structure with every worker reply timing out."""
    cm = CostModel()
    core = CorenessDecomposition(
        8, eps=0.3, cm=cm, constants=SMALL, seed=7, executor=executor
    )
    dens = DensityEstimator(
        8, eps=0.3, cm=cm, constants=SMALL, seed=7, executor=executor
    )
    core.insert_batch(EDGES)
    dens.insert_batch(EDGES)
    return (
        tuple(sorted(core.estimates().items())),
        dens.density_estimate(),
        cm.work,
        cm.depth,
    )


class TestDegradedDispatchReleasesSegments:
    def test_collect_timeout_drains_arena(self, monkeypatch):
        """Every seed published before the breakdown is unlinked.

        ``_recv`` raising on the first plan retires the fleet; all later
        plans — whose seed blobs were already published — take the
        degraded branch, which must release their segments.  Before the
        fix the arena still held one segment per degraded seed here.
        """
        executor = SharedStateExecutor(max_workers=2)

        def timeout(self, conn):
            raise TimeoutError("worker never answered (injected)")

        monkeypatch.setattr(SharedStateExecutor, "_recv", timeout)
        try:
            _drive_degraded(executor)
            assert len(executor.arena) == 0, (
                "degraded sweep left unconsumed shm segments registered"
            )
        finally:
            executor.close()

    def test_degraded_answers_match_serial(self, monkeypatch):
        """The leak fix must not change what the degraded sweep computes."""
        cm = CostModel()
        core = CorenessDecomposition(8, eps=0.3, cm=cm, constants=SMALL, seed=7)
        dens = DensityEstimator(8, eps=0.3, cm=cm, constants=SMALL, seed=7)
        core.insert_batch(EDGES)
        dens.insert_batch(EDGES)
        serial = (
            tuple(sorted(core.estimates().items())),
            dens.density_estimate(),
            cm.work,
            cm.depth,
        )

        executor = SharedStateExecutor(max_workers=2)

        def timeout(self, conn):
            raise TimeoutError("worker never answered (injected)")

        monkeypatch.setattr(SharedStateExecutor, "_recv", timeout)
        try:
            assert _drive_degraded(executor) == serial
        finally:
            executor.close()

    def test_dispatch_pipe_error_releases_fresh_seed(self):
        """A seed published just before the pipe broke is unlinked too."""
        executor = SharedStateExecutor(max_workers=1)
        try:
            # sabotage the (lazily created) worker pipe so the very first
            # seed send raises BrokenPipeError inside _dispatch.
            conn = executor._conn(0)
            conn.close()
            executor._conns[0] = conn
            _drive_degraded(executor)
            assert len(executor.arena) == 0
        finally:
            executor.close()


def test_no_resource_tracker_warnings_without_close():
    """End to end: a degraded sweep that never calls close() exits clean.

    Before the fix the resource tracker printed 'leaked shared_memory
    objects to clean up at shutdown' on interpreter exit; any such noise
    on stderr fails this test.
    """
    script = textwrap.dedent(
        """
        from repro.config import Constants
        from repro.core.coreness import CorenessDecomposition
        from repro.instrument.work_depth import CostModel
        from repro.pram.shmexec import SharedStateExecutor

        def timeout(self, conn):
            raise TimeoutError("injected")

        SharedStateExecutor._recv = timeout
        executor = SharedStateExecutor(max_workers=2)
        cm = CostModel()
        core = CorenessDecomposition(
            8, eps=0.3, cm=cm, seed=7, executor=executor,
            constants=Constants(sample_c=0.5, min_B=4, duplication_cap=8),
        )
        core.insert_batch([(0, 1), (0, 2), (1, 2), (2, 3)])
        assert len(executor.arena) == 0, len(executor.arena)
        # deliberately no executor.close(): exit must still be clean
        """
    )
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert "resource_tracker" not in proc.stderr, proc.stderr
    assert "leaked" not in proc.stderr, proc.stderr
