"""Unit + property tests for the treap (the [PP01] substitute engine)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pbst.treap import Treap


class TestBasics:
    def test_empty(self):
        t = Treap()
        assert len(t) == 0
        assert not t
        assert 5 not in t
        assert list(t) == []

    def test_insert_and_contains(self):
        t = Treap()
        assert t.insert(3)
        assert t.insert(1)
        assert t.insert(2)
        assert 1 in t and 2 in t and 3 in t
        assert 0 not in t and 4 not in t

    def test_insert_duplicate_returns_false(self):
        t = Treap()
        assert t.insert(7)
        assert not t.insert(7)
        assert len(t) == 1

    def test_delete(self):
        t = Treap()
        for x in (5, 1, 9):
            t.insert(x)
        assert t.delete(1)
        assert 1 not in t
        assert len(t) == 2

    def test_delete_absent_returns_false(self):
        t = Treap()
        t.insert(1)
        assert not t.delete(2)
        assert len(t) == 1

    def test_iteration_sorted(self):
        t = Treap()
        for x in (5, 2, 9, 1, 7):
            t.insert(x)
        assert list(t) == [1, 2, 5, 7, 9]

    def test_min_max(self):
        t = Treap()
        for x in (5, 2, 9):
            t.insert(x)
        assert t.min() == 2
        assert t.max() == 9

    def test_min_of_empty_raises(self):
        with pytest.raises(KeyError):
            Treap().min()
        with pytest.raises(KeyError):
            Treap().max()

    def test_rank(self):
        t = Treap()
        for x in (10, 20, 30):
            t.insert(x)
        assert t.rank(10) == 0
        assert t.rank(20) == 1
        assert t.rank(30) == 2
        assert t.rank(5) == 0
        assert t.rank(25) == 2
        assert t.rank(99) == 3

    def test_select(self):
        t = Treap()
        for x in (10, 20, 30):
            t.insert(x)
        assert t.select(0) == 10
        assert t.select(1) == 20
        assert t.select(2) == 30

    def test_select_out_of_range(self):
        t = Treap()
        t.insert(1)
        with pytest.raises(IndexError):
            t.select(1)
        with pytest.raises(IndexError):
            t.select(-1)

    def test_select_rank_roundtrip(self):
        t = Treap()
        vals = [3, 14, 15, 92, 65, 35]
        for x in vals:
            t.insert(x)
        for i, x in enumerate(sorted(vals)):
            assert t.select(i) == x
            assert t.rank(x) == i

    def test_tuple_keys(self):
        """Arc keys in the orientation are (head, copy) tuples."""
        t = Treap()
        t.insert((3, 0))
        t.insert((3, 1))
        t.insert((1, 2))
        assert list(t) == [(1, 2), (3, 0), (3, 1)]
        assert t.rank((3, 0)) == 1


class TestRandomized:
    def test_against_sorted_set_model(self):
        rng = random.Random(42)
        t = Treap()
        model: set[int] = set()
        for _ in range(2000):
            x = rng.randrange(200)
            if rng.random() < 0.6:
                assert t.insert(x) == (x not in model)
                model.add(x)
            else:
                assert t.delete(x) == (x in model)
                model.discard(x)
        assert list(t) == sorted(model)
        t.check()

    def test_structure_valid_after_churn(self):
        rng = random.Random(7)
        t = Treap()
        for _ in range(500):
            t.insert(rng.randrange(1000))
        for _ in range(300):
            t.delete(rng.randrange(1000))
        t.check()


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(-100, 100)))
def test_hypothesis_insert_matches_set(xs):
    t = Treap()
    for x in xs:
        t.insert(x)
    assert list(t) == sorted(set(xs))
    t.check()


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.tuples(st.booleans(), st.integers(0, 30)), max_size=200)
)
def test_hypothesis_mixed_ops_match_set(ops):
    t = Treap()
    model: set[int] = set()
    for is_insert, x in ops:
        if is_insert:
            t.insert(x)
            model.add(x)
        else:
            t.delete(x)
            model.discard(x)
    assert list(t) == sorted(model)
    for i, x in enumerate(sorted(model)):
        assert t.select(i) == x
        assert t.rank(x) == i
    t.check()
