"""Tests for the work/depth cost model — the simulated PRAM."""

import pytest

from repro.instrument import CostModel, NullCostModel


class TestSequential:
    def test_tick_adds_to_both(self):
        cm = CostModel()
        cm.tick()
        cm.tick(4)
        assert cm.work == 5
        assert cm.depth == 5

    def test_charge_is_independent(self):
        cm = CostModel()
        cm.charge(work=10, depth=2)
        assert cm.work == 10
        assert cm.depth == 2

    def test_counters(self):
        cm = CostModel()
        cm.count("phases")
        cm.count("phases", 3)
        assert cm.counters["phases"] == 4


class TestParallel:
    def test_branches_sum_work_max_depth(self):
        cm = CostModel()
        with cm.parallel() as region:
            for cost in (3, 5, 2):
                with region.branch():
                    cm.tick(cost)
        assert cm.work == 10
        assert cm.depth == 5

    def test_nested_regions(self):
        cm = CostModel()
        # two sequential phases, each a parallel sweep of depth 1
        for _ in range(2):
            with cm.parallel() as region:
                for _ in range(4):
                    with region.branch():
                        cm.tick()
        assert cm.work == 8
        assert cm.depth == 2

    def test_parallel_inside_branch(self):
        cm = CostModel()
        with cm.parallel() as outer:
            with outer.branch():
                with cm.parallel() as inner:
                    for c in (7, 1):
                        with inner.branch():
                            cm.tick(c)
            with outer.branch():
                cm.tick(3)
        assert cm.work == 11
        assert cm.depth == 7

    def test_region_overhead_is_sequential(self):
        cm = CostModel()
        with cm.parallel() as region:
            cm.tick(2)  # overhead outside any branch
            with region.branch():
                cm.tick(5)
        assert cm.work == 7
        assert cm.depth == 7  # overhead adds to depth as well

    def test_empty_region(self):
        cm = CostModel()
        with cm.parallel():
            pass
        assert cm.work == 0
        assert cm.depth == 0

    def test_pfor(self):
        cm = CostModel()
        out = cm.pfor([1, 2, 3], lambda x: (cm.tick(x), x * 2)[1])
        assert out == [2, 4, 6]
        assert cm.work == 6
        assert cm.depth == 3


class TestSnapshots:
    def test_snapshot_delta(self):
        cm = CostModel()
        cm.tick(3)
        a = cm.snapshot()
        cm.tick(4)
        d = cm.snapshot() - a
        assert d.work == 4 and d.depth == 4

    def test_snapshot_inside_region_raises(self):
        cm = CostModel()
        with pytest.raises(RuntimeError):
            with cm.parallel():
                cm.snapshot()

    def test_measure_context(self):
        cm = CostModel()
        with cm.measure() as delta:
            cm.tick(9)
        assert delta.work == 9

    def test_reset(self):
        cm = CostModel()
        cm.tick(5)
        cm.count("x")
        cm.reset()
        assert cm.work == 0 and cm.counters == {}


class TestNullModel:
    def test_ignores_everything(self):
        cm = NullCostModel()
        cm.tick(100)
        cm.charge(work=5, depth=5)
        cm.count("y")
        assert cm.work == 0
        assert cm.depth == 0
        assert cm.counters == {}

    def test_pfor_still_executes(self):
        cm = NullCostModel()
        assert cm.pfor([1, 2], lambda x: x + 1) == [2, 3]
