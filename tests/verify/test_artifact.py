"""Tests for repro artifacts: write/read validation and replay round trips."""

import json

import pytest

from repro.config import Constants
from repro.errors import ParameterError
from repro.graphs import streams
from repro.resilience.chaos import minimize_trial, run_trial
from repro.resilience.faults import FaultInjector, FaultSpec
from repro.verify.artifact import read_artifact, replay_artifact, write_artifact
from repro.verify.differential import RunnerConfig, minimize_diff, run_diff

SMALL = Constants(sample_c=0.5, min_B=4, duplication_cap=8)

DIFF_PANEL = [
    RunnerConfig("serial"),
    RunnerConfig("injected",
                 faults=(("tokens.drop.phase", 2, "raise"),),
                 cost_class=None),
]


class TestFormat:
    def test_read_rejects_non_artifact(self, tmp_path):
        p = tmp_path / "junk.json"
        p.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ParameterError):
            read_artifact(p)

    def test_read_rejects_future_version(self, tmp_path):
        p = tmp_path / "future.json"
        p.write_text(json.dumps(
            {"format": "repro-verify-repro", "version": 99, "kind": "diff"}
        ))
        with pytest.raises(ParameterError):
            read_artifact(p)

    def test_diff_artifact_requires_configs(self, tmp_path):
        with pytest.raises(ParameterError):
            write_artifact(tmp_path / "a.json", kind="diff",
                           ops=[], params={})

    def test_chaos_artifact_requires_structure(self, tmp_path):
        with pytest.raises(ParameterError):
            write_artifact(tmp_path / "a.json", kind="chaos",
                           ops=[], params={})

    def test_stream_round_trip(self, tmp_path):
        ops = streams.churn(10, steps=5, batch_size=3, seed=1)
        p = write_artifact(tmp_path / "rt.json", kind="chaos", ops=ops,
                           params={"n": 10}, structure="balanced",
                           faults=(("tokens.drop.phase", 1, "raise"),))
        payload = read_artifact(p)
        assert payload["stream"] == ops
        assert payload["faults"] == [["tokens.drop.phase", 1, "raise"]]


class TestDiffReplay:
    def test_minimized_diff_artifact_reproduces(self, tmp_path):
        ops = streams.churn(16, steps=15, batch_size=5, seed=3)
        report = run_diff(ops, configs=DIFF_PANEL, eps=0.4, constants=SMALL,
                          seed=3, n=16)
        assert not report.ok
        minimal, probe = minimize_diff(ops, report, configs=DIFF_PANEL,
                                       eps=0.4, constants=SMALL, seed=3, n=16)
        p = write_artifact(
            tmp_path / "diff.json", kind="diff", ops=minimal,
            params={"n": 16, "eps": 0.4, "seed": 3, "deep_every": 0},
            configs=probe, constants=SMALL,
            expected={"divergences": [d.render() for d in report.divergences]},
        )
        reproduced, text = replay_artifact(p)
        assert reproduced, text
        assert "RED" in text

    def test_green_panel_artifact_does_not_reproduce(self, tmp_path):
        ops = streams.churn(12, steps=6, batch_size=4, seed=5)
        p = write_artifact(
            tmp_path / "green.json", kind="diff", ops=ops,
            params={"n": 12, "eps": 0.4, "seed": 5},
            configs=[RunnerConfig("serial"), RunnerConfig("rung-skip",
                                                          rung_skip=True,
                                                          cost_class=None)],
            constants=SMALL,
        )
        reproduced, text = replay_artifact(p)
        assert not reproduced
        assert "GREEN" in text


class TestChaosReplay:
    # with per-batch audits disabled, a silent corruption survives to the
    # final audit — the scenario the chaos minimizer exists for
    PARAMS = dict(n=16, H=4, eps=0.35, audit_every=0, seed=3)
    SPECS = (("tokens.push.settle", 1, "corrupt"),)

    def _ops(self):
        return streams.churn(16, 12, 4, seed=3)

    def test_minimize_trial_and_replay_round_trip(self, tmp_path):
        ops = self._ops()
        injector = FaultInjector(
            [FaultSpec(site=s, hit=h, action=a) for s, h, a in self.SPECS],
            seed=9,
        )
        findings, _manager = run_trial("balanced", ops, injector,
                                       constants=SMALL, **self.PARAMS)
        assert findings, "corruption with audits off must reach the final audit"
        minimal = minimize_trial("balanced", ops, self.SPECS, injector_seed=9,
                                 constants=SMALL, **self.PARAMS)
        assert 1 <= len(minimal) <= 2
        p = write_artifact(
            tmp_path / "chaos.json", kind="chaos", ops=minimal,
            params={"injector_seed": 9, "checkpoint_every": 5,
                    "deep_audit": True, **self.PARAMS},
            structure="balanced", faults=self.SPECS, constants=SMALL,
            expected={"findings": ">= 1"},
        )
        reproduced, text = replay_artifact(p)
        assert reproduced, text
        assert "RED (reproduced)" in text

    def test_chaos_soak_minimize_writes_artifacts(self, tmp_path):
        # drive the soak's own minimize/artifact path with a deterministic
        # failing trial: restrict the site pool so corruption can fire
        from repro.resilience.chaos import chaos_soak

        report = chaos_soak(
            "balanced", trials=3, seed=3, n=16, batches=10, batch_size=4,
            faults_per_trial=2, audit_every=0, constants=SMALL,
            sites=("tokens.push.settle", "tokens.drop.settle"),
            minimize=True, artifact_dir=tmp_path,
        )
        if report.findings:
            assert report.repros, report.render()
            for path in report.repros:
                reproduced, text = replay_artifact(path)
                assert reproduced, text
        else:  # every corruption was masked on these seeds; soak stayed green
            assert not report.repros
