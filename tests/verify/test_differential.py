"""Tests for the differential replay harness (repro verify diff)."""

import pytest

from repro.config import Constants
from repro.errors import ParameterError
from repro.graphs import streams
from repro.verify.differential import (
    RunnerConfig,
    configs_by_name,
    default_configs,
    minimize_diff,
    run_diff,
)

SMALL = Constants(sample_c=0.5, min_B=4, duplication_cap=8)


class TestRunnerConfig:
    def test_dict_round_trip(self):
        for cfg in default_configs():
            assert RunnerConfig.from_dict(cfg.to_dict()) == cfg

    def test_round_trip_preserves_none_cost_class(self):
        cfg = RunnerConfig("x", faults=(("tokens.drop.phase", 2, "raise"),),
                           cost_class=None)
        back = RunnerConfig.from_dict(cfg.to_dict())
        assert back.cost_class is None
        assert back.faults == cfg.faults

    def test_configs_by_name_selects_in_order(self):
        panel = configs_by_name(["serial", "rung-skip"])
        assert [c.name for c in panel] == ["serial", "rung-skip"]

    def test_configs_by_name_rejects_unknown(self):
        with pytest.raises(ParameterError):
            configs_by_name(["serial", "warp-drive"])


class TestRunDiff:
    def test_green_across_serial_telemetry_rungskip(self):
        ops = streams.churn(16, steps=12, batch_size=4, seed=2)
        panel = configs_by_name(["serial", "telemetry", "rung-skip"])
        report = run_diff(ops, configs=panel, eps=0.4, constants=SMALL,
                          seed=2, n=16, deep_every=6)
        assert report.ok, report.render()
        assert report.batches == len(ops)
        # telemetry shares the exact cost class: bit-identical totals
        assert report.cost_totals["telemetry"] == report.cost_totals["serial"]
        # rung-skip answers matched (report is green) but does less work
        assert report.cost_totals["rung-skip"][0] <= report.cost_totals["serial"][0]

    def test_green_with_process_executor(self):
        ops = streams.churn(14, steps=6, batch_size=4, seed=4)
        panel = configs_by_name(["serial", "process-2"])
        report = run_diff(ops, configs=panel, eps=0.4, constants=SMALL,
                          seed=4, n=14)
        assert report.ok, report.render()
        assert report.cost_totals["process-2"] == report.cost_totals["serial"]

    def test_chaos_recovered_matches_baseline_answers(self):
        ops = streams.churn(14, steps=10, batch_size=4, seed=6)
        panel = configs_by_name(["serial", "chaos-recovered"])
        report = run_diff(ops, configs=panel, eps=0.4, constants=SMALL,
                          seed=6, n=14)
        assert report.ok, report.render()

    def test_unrecovered_fault_is_a_divergence(self):
        ops = streams.churn(16, steps=10, batch_size=4, seed=3)
        panel = [
            RunnerConfig("serial"),
            RunnerConfig("injected",
                         faults=(("tokens.drop.phase", 2, "raise"),),
                         cost_class=None),
        ]
        report = run_diff(ops, configs=panel, eps=0.4, constants=SMALL,
                          seed=3, n=16)
        assert not report.ok
        assert report.implicated == {"injected"}
        assert any(d.observable == "exception" for d in report.divergences)
        # one report per dead config, not one per remaining batch
        assert len([d for d in report.divergences if d.config == "injected"]) == 1

    def test_empty_panel_rejected(self):
        with pytest.raises(ParameterError):
            run_diff([], configs=[])


class TestMinimizeDiff:
    def test_injected_fault_shrinks_to_tiny_repro(self):
        ops = streams.churn(16, steps=20, batch_size=5, seed=3)
        panel = [
            RunnerConfig("serial"),
            RunnerConfig("injected",
                         faults=(("tokens.drop.phase", 2, "raise"),),
                         cost_class=None),
        ]
        report = run_diff(ops, configs=panel, eps=0.4, constants=SMALL,
                          seed=3, n=16)
        assert not report.ok
        minimal, probe = minimize_diff(ops, report, configs=panel, eps=0.4,
                                       constants=SMALL, seed=3, n=16)
        # the ISSUE acceptance bound: the fault needs at most two batches
        assert 1 <= len(minimal) <= 2
        assert [c.name for c in probe] == ["serial", "injected"]
        # the shrunk stream still fails under the probe panel at the same n
        replay = run_diff(minimal, configs=probe, eps=0.4, constants=SMALL,
                          seed=3, n=16)
        assert not replay.ok
