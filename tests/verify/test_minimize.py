"""Tests for the ddmin trace minimizer and stream repair."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graphs.streams import BatchOp, churn
from repro.verify.minimize import minimize_stream, repair_stream


def ins(*edges):
    return BatchOp("insert", tuple(edges))


def dele(*edges):
    return BatchOp("delete", tuple(edges))


def is_valid(ops) -> bool:
    """Inserts absent, deletes present, no empty batches."""
    live: set = set()
    for op in ops:
        if not op.edges:
            return False
        for e in op.edges:
            if op.kind == "insert":
                if e in live:
                    return False
                live.add(e)
            else:
                if e not in live:
                    return False
                live.discard(e)
    return True


class TestRepairStream:
    def test_valid_stream_unchanged(self):
        ops = [ins((0, 1), (1, 2)), dele((0, 1)), ins((0, 1))]
        repaired = repair_stream(ops)
        assert repaired == ops
        # same objects, not copies — repair is a no-op on valid streams
        assert all(a is b for a, b in zip(repaired, ops))

    def test_duplicate_insert_dropped(self):
        repaired = repair_stream([ins((0, 1)), ins((0, 1), (1, 2))])
        assert repaired == [ins((0, 1)), ins((1, 2))]

    def test_dead_delete_dropped(self):
        repaired = repair_stream([ins((0, 1)), dele((1, 2))])
        assert repaired == [ins((0, 1))]

    def test_empty_batches_vanish(self):
        repaired = repair_stream([dele((0, 1)), ins((0, 1))])
        assert repaired == [ins((0, 1))]

    def test_idempotent(self):
        ops = [ins((0, 1)), ins((0, 1), (2, 3)), dele((4, 5), (2, 3))]
        once = repair_stream(ops)
        assert repair_stream(once) == once

    @settings(
        max_examples=50,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "delete"]),
                st.lists(
                    st.tuples(st.integers(0, 5), st.integers(0, 5))
                    .filter(lambda e: e[0] != e[1])
                    .map(lambda e: (min(e), max(e))),
                    min_size=0,
                    max_size=4,
                ),
            ),
            max_size=12,
        )
    )
    def test_repair_always_yields_valid_stream(self, raw):
        ops = [BatchOp(kind, tuple(dict.fromkeys(edges))) for kind, edges in raw]
        repaired = repair_stream(ops)
        assert is_valid(repaired)
        assert repair_stream(repaired) == repaired


class TestMinimizeStream:
    def test_passing_stream_raises(self):
        with pytest.raises(ValueError):
            minimize_stream([ins((0, 1))], lambda ops: False)

    def test_shrinks_to_single_culprit_edge(self):
        # failure = "the stream ever inserts edge (1, 2)"
        ops = churn(12, steps=20, batch_size=5, seed=3)
        ops.append(ins((1, 2)))

        def fails(candidate):
            live: set = set()
            for op in candidate:
                if op.kind == "insert":
                    live |= set(op.edges)
                    if (1, 2) in op.edges:
                        return True
                else:
                    live -= set(op.edges)
            return False

        minimal = minimize_stream(ops, fails)
        assert minimal == [ins((1, 2))]

    def test_deterministic(self):
        ops = churn(10, steps=12, batch_size=4, seed=7)
        target = ops[5].edges[0]

        def fails(candidate):
            return any(
                op.kind == ops[5].kind and target in op.edges for op in candidate
            )

        assert minimize_stream(ops, fails) == minimize_stream(ops, fails)

    def test_predicate_only_sees_valid_streams_once_each(self):
        ops = churn(10, steps=10, batch_size=4, seed=1)
        seen = []

        def fails(candidate):
            assert is_valid(candidate)
            key = tuple((op.kind, op.edges) for op in candidate)
            assert key not in seen, "memoised predicate re-ran a candidate"
            seen.append(key)
            return sum(op.size for op in candidate if op.kind == "insert") >= 2

        minimal = minimize_stream(ops, fails)
        assert sum(op.size for op in minimal if op.kind == "insert") == 2

    def test_minimized_stream_still_fails(self):
        ops = churn(14, steps=15, batch_size=5, seed=9)

        def fails(candidate):
            return sum(op.size for op in candidate) >= 3

        minimal = minimize_stream(ops, fails)
        assert fails(minimal)
        assert sum(op.size for op in minimal) == 3

    def test_shrink_edges_within_batch(self):
        ops = [ins((0, 1), (2, 3), (4, 5), (6, 7))]

        def fails(candidate):
            return any(
                op.kind == "insert" and (4, 5) in op.edges for op in candidate
            )

        minimal = minimize_stream(ops, fails)
        assert minimal == [ins((4, 5))]
